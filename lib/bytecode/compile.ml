exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type blk = { mutable body_rev : Instr.t list; mutable term : Method.term option }
type loop_frame = { continue_to : int; break_to : int }

type ctx = {
  mname : string;
  blocks : (int, blk) Hashtbl.t;
  mutable n_blocks : int;
  mutable n_branches : int;
  slots : (string, int) Hashtbl.t;
  mutable n_slots : int;
  exit_block : int;
  mutable loop_stack : loop_frame list;
}

let new_block ctx =
  let id = ctx.n_blocks in
  ctx.n_blocks <- id + 1;
  Hashtbl.replace ctx.blocks id { body_rev = []; term = None };
  id

let blk ctx id = Hashtbl.find ctx.blocks id
let emit ctx id ins = (blk ctx id).body_rev <- ins :: (blk ctx id).body_rev

let set_term ctx id term =
  let b = blk ctx id in
  assert (b.term = None);
  b.term <- Some term

let fresh_branch ctx =
  let id = ctx.n_branches in
  ctx.n_branches <- id + 1;
  id

let slot_of ctx name =
  match Hashtbl.find_opt ctx.slots name with
  | Some s -> s
  | None ->
      let s = ctx.n_slots in
      ctx.n_slots <- s + 1;
      Hashtbl.replace ctx.slots name s;
      s

let rec eval ctx cur (e : Ast.expr) =
  match e with
  | Int k -> emit ctx cur (Instr.Const k)
  | Var n -> emit ctx cur (Instr.Load (slot_of ctx n))
  | Global ix -> emit ctx cur (Instr.GLoad ix)
  | Heap idx ->
      eval ctx cur idx;
      emit ctx cur Instr.AGet
  | Bin (op, a, b) ->
      eval ctx cur a;
      eval ctx cur b;
      emit ctx cur (Instr.Binop op)
  | Rel (c, a, b) ->
      eval ctx cur a;
      eval ctx cur b;
      emit ctx cur (Instr.Cmp c)
  | Not e ->
      eval ctx cur e;
      emit ctx cur Instr.Not
  | Neg e ->
      eval ctx cur e;
      emit ctx cur Instr.Neg
  | Call (callee, args) ->
      List.iter (eval ctx cur) args;
      emit ctx cur (Instr.Call (callee, List.length args))
  | Rand n ->
      if n <= 0 then error "%s: rand %d needs a positive bound" ctx.mname n;
      emit ctx cur (Instr.Rand n)

(* Compile a statement into the open block [cur]; return the block where
   control continues, or [None] if the statement terminated control flow. *)
let rec stmt ctx cur (s : Ast.stmt) =
  match s with
  | Set (n, e) ->
      eval ctx cur e;
      emit ctx cur (Instr.Store (slot_of ctx n));
      Some cur
  | Set_global (ix, e) ->
      eval ctx cur e;
      emit ctx cur (Instr.GStore ix);
      Some cur
  | Set_heap (idx, value) ->
      eval ctx cur idx;
      eval ctx cur value;
      emit ctx cur Instr.ASet;
      Some cur
  | Expr e ->
      eval ctx cur e;
      emit ctx cur Instr.Pop;
      Some cur
  | Return e ->
      eval ctx cur e;
      set_term ctx cur (Jmp ctx.exit_block);
      None
  | Break -> (
      match ctx.loop_stack with
      | [] -> error "%s: break outside a loop" ctx.mname
      | f :: _ ->
          set_term ctx cur (Jmp f.break_to);
          None)
  | Continue -> (
      match ctx.loop_stack with
      | [] -> error "%s: continue outside a loop" ctx.mname
      | f :: _ ->
          set_term ctx cur (Jmp f.continue_to);
          None)
  | If (c, thens, elses) -> (
      eval ctx cur c;
      let tb = new_block ctx and eb = new_block ctx in
      set_term ctx cur
        (Br { branch = fresh_branch ctx; on_true = tb; on_false = eb });
      let tend = stmts ctx tb thens and eend = stmts ctx eb elses in
      match (tend, eend) with
      | None, None -> None
      | _ ->
          let join = new_block ctx in
          Option.iter (fun b -> set_term ctx b (Jmp join)) tend;
          Option.iter (fun b -> set_term ctx b (Jmp join)) eend;
          Some join)
  | While (c, body) ->
      let header = new_block ctx in
      set_term ctx cur (Jmp header);
      let body_b = new_block ctx and after = new_block ctx in
      eval ctx header c;
      set_term ctx header
        (Br { branch = fresh_branch ctx; on_true = body_b; on_false = after });
      ctx.loop_stack <- { continue_to = header; break_to = after } :: ctx.loop_stack;
      let bend = stmts ctx body_b body in
      ctx.loop_stack <- List.tl ctx.loop_stack;
      Option.iter (fun b -> set_term ctx b (Jmp header)) bend;
      Some after
  | Do_while (body, c) ->
      let body_b = new_block ctx in
      set_term ctx cur (Jmp body_b);
      let cond_b = new_block ctx and after = new_block ctx in
      ctx.loop_stack <- { continue_to = cond_b; break_to = after } :: ctx.loop_stack;
      let bend = stmts ctx body_b body in
      ctx.loop_stack <- List.tl ctx.loop_stack;
      Option.iter (fun b -> set_term ctx b (Jmp cond_b)) bend;
      eval ctx cond_b c;
      set_term ctx cond_b
        (Br { branch = fresh_branch ctx; on_true = body_b; on_false = after });
      Some after
  | For (name, lo, hi, body) ->
      let slot = slot_of ctx name in
      eval ctx cur lo;
      emit ctx cur (Instr.Store slot);
      let header = new_block ctx in
      set_term ctx cur (Jmp header);
      let body_b = new_block ctx
      and update = new_block ctx
      and after = new_block ctx in
      eval ctx header (Rel (Instr.Lt, Var name, hi));
      set_term ctx header
        (Br { branch = fresh_branch ctx; on_true = body_b; on_false = after });
      ctx.loop_stack <- { continue_to = update; break_to = after } :: ctx.loop_stack;
      let bend = stmts ctx body_b body in
      ctx.loop_stack <- List.tl ctx.loop_stack;
      Option.iter (fun b -> set_term ctx b (Jmp update)) bend;
      emit ctx update (Instr.Inc (slot, 1));
      set_term ctx update (Jmp header);
      Some after
  | Switch (e, cases, default) ->
      let scratch = slot_of ctx (Fmt.str "$sw%d" ctx.n_branches) in
      eval ctx cur e;
      emit ctx cur (Instr.Store scratch);
      let open_ends = ref [] in
      let chain =
        List.fold_left
          (fun chain (k, body) ->
            emit ctx chain (Instr.Load scratch);
            emit ctx chain (Instr.Const k);
            emit ctx chain (Instr.Cmp Instr.Eq);
            let case_b = new_block ctx and next_b = new_block ctx in
            set_term ctx chain
              (Br { branch = fresh_branch ctx; on_true = case_b; on_false = next_b });
            (match stmts ctx case_b body with
            | Some b -> open_ends := b :: !open_ends
            | None -> ());
            next_b)
          cur cases
      in
      (match stmts ctx chain default with
      | Some b -> open_ends := b :: !open_ends
      | None -> ());
      if !open_ends = [] then None
      else begin
        let join = new_block ctx in
        List.iter (fun b -> set_term ctx b (Jmp join)) !open_ends;
        Some join
      end

and stmts ctx cur = function
  | [] -> Some cur
  | s :: rest -> (
      match stmt ctx cur s with
      | Some next -> stmts ctx next rest
      | None -> None (* drop unreachable statements *))

let term_successors : Method.term -> int list = function
  | Ret -> []
  | Jmp b -> [ b ]
  | Br { on_true; on_false; _ } -> [ on_true; on_false ]

(* Drop blocks unreachable from the entry (e.g. a do-while condition whose
   body always breaks) and renumber densely. *)
let prune ~mname ~entry ~exit_ (blocks : Method.block array) =
  let n = Array.length blocks in
  let seen = Array.make n false in
  let rec go b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter go (term_successors blocks.(b).term)
    end
  in
  go entry;
  if not seen.(exit_) then
    error "%s: method cannot reach its exit (infinite loop with no break?)" mname;
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for b = 0 to n - 1 do
    if seen.(b) then begin
      remap.(b) <- !next;
      incr next
    end
  done;
  let retarget (t : Method.term) : Method.term =
    match t with
    | Ret -> Ret
    | Jmp b -> Jmp remap.(b)
    | Br { branch; on_true; on_false } ->
        Br { branch; on_true = remap.(on_true); on_false = remap.(on_false) }
  in
  let kept = ref [] in
  for b = n - 1 downto 0 do
    if seen.(b) then
      kept := { blocks.(b) with term = retarget blocks.(b).term } :: !kept
  done;
  (Array.of_list !kept, remap.(entry), remap.(exit_))

let method_ (def : Ast.mdef) =
  let ctx =
    {
      mname = def.mname;
      blocks = Hashtbl.create 32;
      n_blocks = 0;
      n_branches = 0;
      slots = Hashtbl.create 16;
      n_slots = 0;
      exit_block = 1;
      loop_stack = [];
    }
  in
  let entry = new_block ctx in
  let exit_ = new_block ctx in
  assert (entry = 0 && exit_ = ctx.exit_block);
  set_term ctx exit_ Method.Ret;
  List.iter
    (fun p ->
      if Hashtbl.mem ctx.slots p then
        error "%s: duplicate parameter %s" def.mname p;
      ignore (slot_of ctx p))
    def.params;
  let start = new_block ctx in
  set_term ctx entry (Jmp start);
  (match stmts ctx start def.body with
  | Some last ->
      emit ctx last (Instr.Const 0);
      set_term ctx last (Jmp exit_)
  | None -> ());
  let blocks =
    Array.init ctx.n_blocks (fun id ->
        let b = blk ctx id in
        match b.term with
        | Some term ->
            { Method.body = Array.of_list (List.rev b.body_rev); term }
        | None ->
            (* only unreachable blocks may be left open; give them a
               harmless terminator, pruning will drop them *)
            { Method.body = Array.of_list (List.rev b.body_rev); term = Jmp id })
  in
  let blocks, entry, exit_ = prune ~mname:def.mname ~entry ~exit_ blocks in
  {
    Method.name = def.mname;
    nparams = List.length def.params;
    nlocals = ctx.n_slots;
    blocks;
    entry;
    exit_;
    uninterruptible = def.muninterruptible;
  }

let program ~name ?(n_globals = 16) ?(heap_size = 4096) ~main defs =
  Program.create ~name ~n_globals ~heap_size ~main (List.map method_ defs)

let pdef (d : Ast.pdef) =
  program ~name:d.pname ~n_globals:d.globals ~heap_size:d.heap ~main:d.pmain
    d.methods
