(** Structured surface language for writing workloads.

    Programs are written as an AST (directly in OCaml or via {!Parse}) and
    lowered to bytecode by {!Compile}.  Variables are named; locals are
    zero-initialized.  [For (v, lo, hi, body)] iterates [v] from [lo] while
    [v < hi], incrementing by one after each iteration ([Continue] jumps to
    the increment, as in Java).  [Switch] dispatches on integer cases with
    a default. *)

type expr =
  | Int of int
  | Var of string
  | Global of int  (** global scalar [G\[i\]] *)
  | Heap of expr  (** heap cell [H\[e\]] *)
  | Bin of Instr.binop * expr * expr
  | Rel of Instr.cmp * expr * expr
  | Not of expr
  | Neg of expr
  | Call of string * expr list
  | Rand of int  (** deterministic pseudo-random in [0, n) *)

type stmt =
  | Set of string * expr
  | Set_global of int * expr
  | Set_heap of expr * expr  (** [H\[e1\] := e2] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of string * expr * expr * stmt list
  | Switch of expr * (int * stmt list) list * stmt list
  | Break
  | Continue
  | Expr of expr  (** evaluate for effect, discard the value *)
  | Return of expr

type mdef = {
  mname : string;
  params : string list;
  muninterruptible : bool;
  body : stmt list;
}

type pdef = {
  pname : string;
  globals : int;
  heap : int;
  pmain : string;
  methods : mdef list;
}

(** Convenience constructors, designed to be [open]ed in workload code. *)

val i : int -> expr
val v : string -> expr
val g : int -> expr
val h : expr -> expr
val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val mul : expr -> expr -> expr
val div : expr -> expr -> expr
val rem : expr -> expr -> expr
val band : expr -> expr -> expr
val bor : expr -> expr -> expr
val bxor : expr -> expr -> expr
val shl : expr -> expr -> expr
val shr : expr -> expr -> expr
val eq : expr -> expr -> expr
val ne : expr -> expr -> expr
val lt : expr -> expr -> expr
val le : expr -> expr -> expr
val gt : expr -> expr -> expr
val ge : expr -> expr -> expr
val not_ : expr -> expr
val neg : expr -> expr
val call : string -> expr list -> expr
val rnd : int -> expr
val set : string -> expr -> stmt
val gset : int -> expr -> stmt
val hset : expr -> expr -> stmt
val if_ : expr -> stmt list -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt
val dowhile : stmt list -> expr -> stmt
val for_ : string -> expr -> expr -> stmt list -> stmt
val switch : expr -> (int * stmt list) list -> stmt list -> stmt
val break_ : stmt
val continue_ : stmt
val expr : expr -> stmt
val ret : expr -> stmt

val mdef :
  ?uninterruptible:bool -> string -> params:string list -> stmt list -> mdef

val pdef :
  ?globals:int -> ?heap:int -> ?main:string -> string -> mdef list -> pdef
