(* Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm". *)

type t = { idoms : int array }

let compute cfg =
  let n = Cfg.n_blocks cfg in
  let rpo = Order.reverse_postorder cfg in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let idoms = Array.make n (-1) in
  let entry = Cfg.entry cfg in
  idoms.(entry) <- entry;
  (* Walk up the (partial) dominator tree to the common ancestor, comparing
     by reverse-postorder index. *)
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idoms.(a) b
    else intersect a idoms.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let new_idom =
            List.fold_left
              (fun acc (e : Cfg.edge) ->
                if idoms.(e.src) = -1 then acc
                else match acc with None -> Some e.src | Some a -> Some (intersect a e.src))
              None (Cfg.predecessors cfg b)
          in
          match new_idom with
          | None -> ()
          | Some d ->
              if idoms.(b) <> d then begin
                idoms.(b) <- d;
                changed := true
              end
        end)
      rpo
  done;
  { idoms }

let idom t b = t.idoms.(b)

let dominates t a b =
  let rec up x = if x = a then true else if x = t.idoms.(x) then false else up t.idoms.(x) in
  up b

let dominator_chain t b =
  let rec up acc x = if x = t.idoms.(x) then x :: acc else up (x :: acc) t.idoms.(x) in
  up [] b
