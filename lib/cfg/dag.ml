type mode = Back_edge | Loop_header
type node = int

type origin =
  | Real of Cfg.edge
  | From_entry of Cfg.block_id
  | To_exit of Cfg.block_id

type edge = { idx : int; esrc : node; edst : node; origin : origin }
type truncation = Split_header of Cfg.block_id | Cut_edge of Cfg.edge

type t = {
  cfg : Cfg.t;
  mode : mode;
  loops : Loops.t;
  n_nodes : int;
  in_node : node array; (* block -> node holding its incoming edges *)
  out_node : node array; (* block -> node holding its outgoing edges *)
  node_block : Cfg.block_id array;
  edges : edge array;
  out_adj : edge list array;
  in_adj : edge list array;
  truncs : truncation list;
  from_entry_by_node : (node, edge) Hashtbl.t;
  to_exit_by_node : (node, edge) Hashtbl.t;
  topo : node array;
}

exception Unsupported of string

let edge_mem e cut = List.exists (fun c -> Cfg.equal_edge c e) cut

(* Node at which a new path starts when control re-enters block [v] through
   a truncation: after the yieldpoint for a split header, at the block start
   otherwise.  If [v] happens to be both, the header's restart point wins
   (a path cannot usefully start at a split header's in-node, whose only
   outgoing edge is the dummy to exit). *)
let restart_node ~out_node v = out_node.(v)

let compute_topo ~n_nodes ~out_adj ~entry =
  let state = Array.make n_nodes `White in
  let post = ref [] in
  let rec visit stack =
    match stack with
    | [] -> ()
    | (v, []) :: rest ->
        state.(v) <- `Black;
        post := v :: !post;
        visit rest
    | (v, e :: es) :: rest -> (
        match state.(e.edst) with
        | `White ->
            state.(e.edst) <- `Grey;
            visit ((e.edst, out_adj.(e.edst)) :: (v, es) :: rest)
        | `Grey -> invalid_arg "Dag.compute_topo: cycle after truncation"
        | `Black -> visit ((v, es) :: rest))
  in
  state.(entry) <- `Grey;
  visit [ (entry, out_adj.(entry)) ];
  Array.of_list !post

let build ?(sampleable = fun _ -> true) mode cfg =
  let loops = Loops.compute cfg in
  let n_blocks = Cfg.n_blocks cfg in
  let splits =
    match mode with
    | Back_edge -> []
    | Loop_header -> List.filter sampleable (Loops.headers loops)
  in
  (match mode with
  | Loop_header when List.mem (Cfg.entry cfg) splits ->
      raise
        (Unsupported
           (Fmt.str "%s: entry block is a loop header" (Cfg.name cfg)))
  | Back_edge | Loop_header -> ());
  let cut =
    match mode with
    | Back_edge -> Loops.back_edges loops @ Loops.irreducible_edges loops
    | Loop_header ->
        (* back edges into headers without a sample point are cut like
           irreducible edges: the path restarts, nothing can be stored *)
        List.filter
          (fun (e : Cfg.edge) -> not (sampleable e.dst))
          (Loops.back_edges loops)
        @ Loops.irreducible_edges loops
  in
  (* Node ids: block b keeps id b (its in-node); each split header gets a
     fresh out-node. *)
  let in_node = Array.init n_blocks Fun.id in
  let out_node = Array.init n_blocks Fun.id in
  let node_block = ref (Array.init n_blocks Fun.id) in
  let next = ref n_blocks in
  List.iter
    (fun h ->
      out_node.(h) <- !next;
      node_block := Array.append !node_block [| h |];
      incr next)
    splits;
  let n_nodes = !next in
  let node_block = !node_block in
  let entry = in_node.(Cfg.entry cfg) in
  let exit_node = in_node.(Cfg.exit_ cfg) in
  (* Truncation records and the dummy endpoints they require. *)
  let truncs =
    List.map (fun h -> Split_header h) splits
    @ List.map (fun e -> Cut_edge e) cut
  in
  let from_entry_targets =
    (* node at which the restarted path begins, deduplicated *)
    List.sort_uniq compare
      (List.map
         (function
           | Split_header h -> restart_node ~out_node h
           | Cut_edge e -> restart_node ~out_node Cfg.(e.dst))
         truncs)
  in
  let to_exit_sources =
    List.sort_uniq compare
      (List.map
         (function
           | Split_header h -> in_node.(h)
           | Cut_edge e -> out_node.(Cfg.(e.src)))
         truncs)
  in
  let edges = ref [] in
  let n_edges = ref 0 in
  let add esrc edst origin =
    let e = { idx = !n_edges; esrc; edst; origin } in
    incr n_edges;
    edges := e :: !edges;
    e
  in
  Cfg.iter_edges
    (fun e ->
      if not (edge_mem e cut) then
        ignore (add out_node.(e.src) in_node.(e.dst) (Real e)))
    cfg;
  let from_entry_by_node = Hashtbl.create 8 in
  List.iter
    (fun nd ->
      let e = add entry nd (From_entry node_block.(nd)) in
      Hashtbl.replace from_entry_by_node nd e)
    from_entry_targets;
  let to_exit_by_node = Hashtbl.create 8 in
  List.iter
    (fun nd ->
      let e = add nd exit_node (To_exit node_block.(nd)) in
      Hashtbl.replace to_exit_by_node nd e)
    to_exit_sources;
  let edges_arr = Array.make !n_edges (List.hd !edges) in
  List.iter (fun e -> edges_arr.(e.idx) <- e) !edges;
  let out_adj = Array.make n_nodes [] in
  let in_adj = Array.make n_nodes [] in
  for i = !n_edges - 1 downto 0 do
    let e = edges_arr.(i) in
    out_adj.(e.esrc) <- e :: out_adj.(e.esrc);
    in_adj.(e.edst) <- e :: in_adj.(e.edst)
  done;
  let topo = compute_topo ~n_nodes ~out_adj ~entry in
  {
    cfg;
    mode;
    loops;
    n_nodes;
    in_node;
    out_node;
    node_block;
    edges = edges_arr;
    out_adj;
    in_adj;
    truncs;
    from_entry_by_node;
    to_exit_by_node;
    topo;
  }

let cfg t = t.cfg
let mode t = t.mode
let loops t = t.loops
let n_nodes t = t.n_nodes
let n_edges t = Array.length t.edges
let entry_node t = t.in_node.(Cfg.entry t.cfg)
let exit_node t = t.in_node.(Cfg.exit_ t.cfg)
let in_node t b = t.in_node.(b)
let out_node t b = t.out_node.(b)
let node_block t nd = t.node_block.(nd)
let out_edges t nd = t.out_adj.(nd)
let in_edges t nd = t.in_adj.(nd)
let edge t i = t.edges.(i)
let iter_edges f t = Array.iter f t.edges
let truncations t = t.truncs
let from_entry_edge t b = Hashtbl.find t.from_entry_by_node (restart_node ~out_node:t.out_node b)
let to_exit_edge t b = Hashtbl.find t.to_exit_by_node t.in_node.(b)

let dummy_edges t trunc =
  let to_exit_node, from_entry_node =
    match trunc with
    | Split_header h -> (t.in_node.(h), restart_node ~out_node:t.out_node h)
    | Cut_edge e ->
        (t.out_node.(Cfg.(e.src)), restart_node ~out_node:t.out_node Cfg.(e.dst))
  in
  ( Hashtbl.find t.to_exit_by_node to_exit_node,
    Hashtbl.find t.from_entry_by_node from_entry_node )

let topo t = Array.copy t.topo

let pp_origin ppf = function
  | Real e -> Fmt.pf ppf "real:%a" Cfg.pp_edge e
  | From_entry b -> Fmt.pf ppf "dummy:entry->B%d" b
  | To_exit b -> Fmt.pf ppf "dummy:B%d->exit" b

let pp ppf t =
  Fmt.pf ppf "@[<v>dag(%s) %s nodes=%d@,"
    (match t.mode with Back_edge -> "back-edge" | Loop_header -> "loop-header")
    (Cfg.name t.cfg) t.n_nodes;
  Array.iter
    (fun e -> Fmt.pf ppf "  n%d -> n%d  (%a)@," e.esrc e.edst pp_origin e.origin)
    t.edges;
  Fmt.pf ppf "@]"
