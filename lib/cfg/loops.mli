(** Loop structure of a CFG.

    A {e back edge} is an edge [u -> v] where [v] dominates [u]; [v] is the
    loop header of the natural loop of that edge.  A graph is {e reducible}
    when every DFS retreating edge is a back edge; structured programs
    always are.  For irreducible graphs the retreating edges that are not
    back edges are reported separately — path profiling truncates them like
    back edges so the derived DAG is acyclic, but their targets are not
    considered loop headers (no yieldpoint is implied there). *)

type t

val compute : Cfg.t -> t
val is_reducible : t -> bool

(** Dominator-based back edges, in deterministic order. *)
val back_edges : t -> Cfg.edge list

(** Retreating edges that are not back edges (empty iff reducible). *)
val irreducible_edges : t -> Cfg.edge list

(** Targets of back edges, deduplicated, increasing. *)
val headers : t -> Cfg.block_id list

val is_header : t -> Cfg.block_id -> bool

(** Blocks of the natural loop of a back edge (header included). *)
val natural_loop : t -> Cfg.edge -> Cfg.block_id list

(** Number of natural loops containing the block (0 outside any loop). *)
val nesting_depth : t -> Cfg.block_id -> int
