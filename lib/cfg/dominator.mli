(** Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm).

    Since {!Cfg.create} guarantees every block is reachable from the entry,
    every block has an immediate dominator; the entry dominates itself. *)

type t

val compute : Cfg.t -> t

(** Immediate dominator.  [idom t (Cfg.entry cfg) = Cfg.entry cfg]. *)
val idom : t -> Cfg.block_id -> Cfg.block_id

(** [dominates t a b] is true iff [a] dominates [b] (reflexive). *)
val dominates : t -> Cfg.block_id -> Cfg.block_id -> bool

(** Blocks strictly dominated by nobody except the chain up to the entry,
    listed root-first: the dominator-tree path from the entry to [b],
    inclusive. *)
val dominator_chain : t -> Cfg.block_id -> Cfg.block_id list
