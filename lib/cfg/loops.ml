type t = {
  cfg : Cfg.t;
  dom : Dominator.t;
  back : Cfg.edge list;
  irreducible : Cfg.edge list;
  header_set : bool array;
  depth : int array;
}

let natural_loop_blocks cfg (e : Cfg.edge) =
  (* Walk predecessors from the back edge's source until the header. *)
  let header = e.dst in
  let n = Cfg.n_blocks cfg in
  let inside = Array.make n false in
  inside.(header) <- true;
  let rec add b =
    if not inside.(b) then begin
      inside.(b) <- true;
      List.iter (fun (p : Cfg.edge) -> add p.src) (Cfg.predecessors cfg b)
    end
  in
  add e.src;
  inside

let compute cfg =
  let dom = Dominator.compute cfg in
  let retreating = Order.retreating_edges cfg in
  let back, irreducible =
    List.partition (fun (e : Cfg.edge) -> Dominator.dominates dom e.dst e.src) retreating
  in
  let n = Cfg.n_blocks cfg in
  let header_set = Array.make n false in
  List.iter (fun (e : Cfg.edge) -> header_set.(e.dst) <- true) back;
  (* Back edges sharing a header define one loop: union their bodies so a
     loop with several continue edges is counted once in nesting depth. *)
  let depth = Array.make n 0 in
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (e : Cfg.edge) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_header e.dst) in
      Hashtbl.replace by_header e.dst (e :: prev))
    back;
  Hashtbl.iter
    (fun _header es ->
      let inside = Array.make n false in
      List.iter
        (fun e ->
          let one = natural_loop_blocks cfg e in
          Array.iteri (fun b ins -> if ins then inside.(b) <- true) one)
        es;
      Array.iteri (fun b ins -> if ins then depth.(b) <- depth.(b) + 1) inside)
    by_header;
  { cfg; dom; back; irreducible; header_set; depth }

let is_reducible t = t.irreducible = []
let back_edges t = t.back
let irreducible_edges t = t.irreducible

let headers t =
  let acc = ref [] in
  for b = Cfg.n_blocks t.cfg - 1 downto 0 do
    if t.header_set.(b) then acc := b :: !acc
  done;
  !acc

let is_header t b = t.header_set.(b)

let natural_loop t e =
  assert (Dominator.dominates t.dom Cfg.(e.dst) Cfg.(e.src));
  let inside = natural_loop_blocks t.cfg e in
  let acc = ref [] in
  for b = Cfg.n_blocks t.cfg - 1 downto 0 do
    if inside.(b) then acc := b :: !acc
  done;
  !acc

let nesting_depth t b = t.depth.(b)
