(** Traversal orders over a CFG.

    All orders are deterministic: successors are visited in the fixed order
    exposed by {!Cfg.successors} (taken arm before not-taken arm). *)

(** Blocks in depth-first preorder from the entry. *)
val dfs_preorder : Cfg.t -> Cfg.block_id array

(** Blocks in reverse postorder from the entry (a topological order when
    the graph is acyclic). *)
val reverse_postorder : Cfg.t -> Cfg.block_id array

(** [postorder_index t] maps each block to its index in postorder. *)
val postorder_index : Cfg.t -> int array

(** Edges [u -> v] such that [v] is on the DFS stack when the edge is
    traversed ("retreating" edges).  For reducible graphs these are exactly
    the natural-loop back edges. *)
val retreating_edges : Cfg.t -> Cfg.edge list
