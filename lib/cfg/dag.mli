(** Acyclic path-numbering graphs derived from a CFG.

    Ball-Larus path profiling enumerates the acyclic paths of a routine by
    truncating its loops; this module performs the truncation in the two
    flavours the paper uses:

    - [Back_edge] (classic BLPP, paper §3.1, Figure 1): every back edge
      [w -> v] is removed and replaced by two dummy edges, [entry -> v] and
      [w -> exit].  Paths end (and restart) on back edges.

    - [Loop_header] (PEP, paper §3.2, Figure 3): every loop header [v] is
      split just after its yieldpoint into [v_in] (receiving all of [v]'s
      predecessors, including back edges) and [v_out] (keeping [v]'s
      successors), the [v_in -> v_out] link is truncated and replaced by
      dummy edges [entry -> v_out] and [v_in -> exit].  Paths end at loop
      headers, where Jikes-style yieldpoints live.

    Irreducible retreating edges (rare; never produced by the structured
    builder) are truncated back-edge-style in both modes so the result is
    acyclic; in [Loop_header] mode they carry no sample opportunity, which
    mirrors the paper's uninterruptible-loop-header accuracy caveat.

    Dummy edges are shared: one [From_entry] edge per distinct truncation
    target and one [To_exit] edge per distinct truncation source. *)

type mode = Back_edge | Loop_header
type node = int

type origin =
  | Real of Cfg.edge  (** an original CFG edge *)
  | From_entry of Cfg.block_id  (** dummy from entry to this block's start node *)
  | To_exit of Cfg.block_id  (** dummy from this block's end node to exit *)

type edge = { idx : int; esrc : node; edst : node; origin : origin }

(** Where a truncation happened; instrumentation attaches the
    end-path/start-path actions here. *)
type truncation =
  | Split_header of Cfg.block_id  (** [Loop_header] mode: sampled at the header yieldpoint *)
  | Cut_edge of Cfg.edge
      (** cut back/irreducible/unsampleable edge: actions run on edge
          traversal, with no sample opportunity in [Loop_header] mode *)

type t

exception Unsupported of string

(** [build ?sampleable mode cfg] truncates [cfg].  In [Loop_header] mode
    only headers for which [sampleable] holds (default: all) are split
    with a sample point; back edges targeting unsampleable headers — loop
    headers that carry no yieldpoint, e.g. loops inlined from
    uninterruptible methods (paper §4.3) — are cut silently, like
    irreducible edges.
    @raise Unsupported in [Loop_header] mode when the entry block is itself
    a sampleable loop header (the bytecode layer always emits a dedicated
    entry block, so this cannot arise from compiled programs). *)
val build : ?sampleable:(Cfg.block_id -> bool) -> mode -> Cfg.t -> t

val cfg : t -> Cfg.t
val mode : t -> mode
val loops : t -> Loops.t
val n_nodes : t -> int
val n_edges : t -> int
val entry_node : t -> node
val exit_node : t -> node

(** Node holding [b]'s incoming CFG edges ([v_in] for a split header). *)
val in_node : t -> Cfg.block_id -> node

(** Node holding [b]'s outgoing CFG edges ([v_out] for a split header). *)
val out_node : t -> Cfg.block_id -> node

(** The block a node belongs to. *)
val node_block : t -> node -> Cfg.block_id

val out_edges : t -> node -> edge list
val in_edges : t -> node -> edge list
val edge : t -> int -> edge
val iter_edges : (edge -> unit) -> t -> unit
val truncations : t -> truncation list

(** The shared dummy edge [entry -> start-node of b].
    @raise Not_found if [b] is not a truncation target. *)
val from_entry_edge : t -> Cfg.block_id -> edge

(** The shared dummy edge [end-node of b -> exit].
    @raise Not_found if [b] is not a truncation source. *)
val to_exit_edge : t -> Cfg.block_id -> edge

(** [dummy_edges t trunc] is the [(to_exit, from_entry)] dummy pair whose
    path-number values the truncation's end-path/start-path instrumentation
    must use. *)
val dummy_edges : t -> truncation -> edge * edge

(** Nodes in a topological order, entry first, exit last. *)
val topo : t -> node array

val pp : t Fmt.t
