(* Iterative depth-first search recording preorder, postorder and
   retreating edges in one pass. *)
type dfs = {
  preorder : Cfg.block_id array;
  postorder : Cfg.block_id array;
  retreating : Cfg.edge list;
}

let run_dfs t =
  let n = Cfg.n_blocks t in
  let state = Array.make n `White in
  let preorder = ref [] and postorder = ref [] and retreating = ref [] in
  (* Explicit stack of (block, remaining successor edges). *)
  let rec visit stack =
    match stack with
    | [] -> ()
    | (b, []) :: rest ->
        state.(b) <- `Black;
        postorder := b :: !postorder;
        visit rest
    | (b, e :: es) :: rest -> (
        let stack = (b, es) :: rest in
        match state.(Cfg.(e.dst)) with
        | `White ->
            state.(e.dst) <- `Grey;
            preorder := e.dst :: !preorder;
            visit ((e.dst, Cfg.successors t e.dst) :: stack)
        | `Grey ->
            retreating := e :: !retreating;
            visit stack
        | `Black -> visit stack)
  in
  let entry = Cfg.entry t in
  state.(entry) <- `Grey;
  preorder := [ entry ];
  visit [ (entry, Cfg.successors t entry) ];
  {
    preorder = Array.of_list (List.rev !preorder);
    postorder = Array.of_list (List.rev !postorder);
    retreating = List.rev !retreating;
  }

let dfs_preorder t = (run_dfs t).preorder

let reverse_postorder t =
  let post = (run_dfs t).postorder in
  let n = Array.length post in
  Array.init n (fun i -> post.(n - 1 - i))

let postorder_index t =
  let post = (run_dfs t).postorder in
  let idx = Array.make (Cfg.n_blocks t) (-1) in
  Array.iteri (fun i b -> idx.(b) <- i) post;
  idx

let retreating_edges t = (run_dfs t).retreating
