(** Control-flow graphs.

    A CFG is a fixed array of basic blocks identified by dense integer ids.
    Every block ends in a terminator: an unconditional jump, a two-way
    conditional branch, or a return.  Multiway dispatch is lowered to branch
    trees before a CFG is built, so a block never has more than two
    successors and there is at most one edge between any ordered pair of
    blocks.

    A well-formed CFG has a single entry block and a single exit block; the
    exit block is the only block terminated by [Return], and every block is
    both reachable from the entry and able to reach the exit.  [create]
    enforces these invariants. *)

type block_id = int

(** Identifies a source-level (bytecode) conditional branch.  Several CFG
    branches may share a branch id after inlining or duplication; edge
    profiles accumulate per branch id. *)
type branch_id = int

type terminator =
  | Return
  | Jump of block_id
  | Branch of { branch : branch_id; taken : block_id; not_taken : block_id }

(** How an edge leaves its source block.  [Seq] edges come from [Jump]
    terminators; [Taken]/[Not_taken] record the conditional-branch arm. *)
type edge_attr = Seq | Taken of branch_id | Not_taken of branch_id

type edge = { src : block_id; dst : block_id; attr : edge_attr }

type t

exception Malformed of string

(** [create ~name ~entry ~exit_ terms] builds and validates a CFG.  The
    block ids are [0 .. Array.length terms - 1].
    @raise Malformed if the graph breaks a well-formedness invariant:
    a target out of range, a [Return] outside the exit block, a
    conditional branch whose arms coincide, an unreachable block, or a
    block that cannot reach the exit. *)
val create :
  name:string -> entry:block_id -> exit_:block_id -> terminator array -> t

val name : t -> string
val entry : t -> block_id
val exit_ : t -> block_id
val n_blocks : t -> int
val terminator : t -> block_id -> terminator

(** Successor edges in a fixed order: a branch yields its [Taken] edge
    first, then [Not_taken]. *)
val successors : t -> block_id -> edge list

val predecessors : t -> block_id -> edge list

(** All edges, grouped by source block in increasing id order. *)
val edges : t -> edge list

val n_edges : t -> int
val iter_blocks : (block_id -> unit) -> t -> unit
val iter_edges : (edge -> unit) -> t -> unit
val fold_edges : ('a -> edge -> 'a) -> 'a -> t -> 'a

(** Branch ids appearing in the graph, deduplicated, increasing. *)
val branch_ids : t -> branch_id list

val equal_edge : edge -> edge -> bool

(** Total order on edges by [(src, dst)]; suitable for [Map]/sorting. *)
val compare_edge : edge -> edge -> int

val pp_edge : edge Fmt.t
val pp : t Fmt.t
