type block_id = int
type branch_id = int

type terminator =
  | Return
  | Jump of block_id
  | Branch of { branch : branch_id; taken : block_id; not_taken : block_id }

type edge_attr = Seq | Taken of branch_id | Not_taken of branch_id
type edge = { src : block_id; dst : block_id; attr : edge_attr }

type t = {
  name : string;
  entry : block_id;
  exit_ : block_id;
  terms : terminator array;
  preds : edge list array; (* computed once at creation *)
}

exception Malformed of string

let malformed fmt = Fmt.kstr (fun s -> raise (Malformed s)) fmt
let name t = t.name
let entry t = t.entry
let exit_ t = t.exit_
let n_blocks t = Array.length t.terms

let terminator t b =
  assert (b >= 0 && b < n_blocks t);
  t.terms.(b)

let successors_of_terms terms src =
  match terms.(src) with
  | Return -> []
  | Jump dst -> [ { src; dst; attr = Seq } ]
  | Branch { branch; taken; not_taken } ->
      [
        { src; dst = taken; attr = Taken branch };
        { src; dst = not_taken; attr = Not_taken branch };
      ]

let successors t b = successors_of_terms t.terms b
let predecessors t b = t.preds.(b)

let iter_blocks f t =
  for b = 0 to n_blocks t - 1 do
    f b
  done

let iter_edges f t = iter_blocks (fun b -> List.iter f (successors t b)) t

let fold_edges f init t =
  let acc = ref init in
  iter_edges (fun e -> acc := f !acc e) t;
  !acc

let edges t = List.rev (fold_edges (fun acc e -> e :: acc) [] t)
let n_edges t = fold_edges (fun n _ -> n + 1) 0 t

let branch_ids t =
  let ids =
    fold_edges
      (fun acc e ->
        match e.attr with Taken b -> b :: acc | Not_taken _ | Seq -> acc)
      [] t
  in
  List.sort_uniq compare ids

let equal_edge a b = a.src = b.src && a.dst = b.dst

let compare_edge a b =
  match compare a.src b.src with 0 -> compare a.dst b.dst | c -> c

(* Depth-first reachability over an adjacency function. *)
let reachable_from n succs start =
  let seen = Array.make n false in
  let rec go b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter go (succs b)
    end
  in
  go start;
  seen

let validate ~name ~entry ~exit_ terms =
  let n = Array.length terms in
  let check_target src dst =
    if dst < 0 || dst >= n then
      malformed "%s: block %d targets out-of-range block %d" name src dst
  in
  if n = 0 then malformed "%s: empty graph" name;
  if entry < 0 || entry >= n then malformed "%s: entry %d out of range" name entry;
  if exit_ < 0 || exit_ >= n then malformed "%s: exit %d out of range" name exit_;
  Array.iteri
    (fun src term ->
      match term with
      | Return ->
          if src <> exit_ then
            malformed "%s: block %d returns but exit is %d" name src exit_
      | Jump dst -> check_target src dst
      | Branch { taken; not_taken; _ } ->
          check_target src taken;
          check_target src not_taken;
          if taken = not_taken then
            malformed "%s: block %d branches to %d on both arms" name src taken)
    terms;
  (match terms.(exit_) with
  | Return -> ()
  | Jump _ | Branch _ -> malformed "%s: exit block %d does not return" name exit_);
  let succ b = List.map (fun e -> e.dst) (successors_of_terms terms b) in
  let from_entry = reachable_from n succ entry in
  Array.iteri
    (fun b r ->
      if not r then malformed "%s: block %d unreachable from entry" name b)
    from_entry;
  (* Every block must reach the exit, otherwise path numbering is undefined
     (NumPaths would be zero along an executable prefix). *)
  let preds = Array.make n [] in
  Array.iteri
    (fun src _ ->
      List.iter
        (fun e -> preds.(e.dst) <- e.src :: preds.(e.dst))
        (successors_of_terms terms src))
    terms;
  let to_exit = reachable_from n (fun b -> preds.(b)) exit_ in
  Array.iteri
    (fun b r ->
      if not r then malformed "%s: block %d cannot reach exit" name b)
    to_exit

let create ~name ~entry ~exit_ terms =
  let terms = Array.copy terms in
  validate ~name ~entry ~exit_ terms;
  let n = Array.length terms in
  let preds = Array.make n [] in
  Array.iteri
    (fun src _ ->
      List.iter
        (fun e -> preds.(e.dst) <- e :: preds.(e.dst))
        (successors_of_terms terms src))
    terms;
  (* Keep predecessor lists in increasing source order for determinism. *)
  let preds = Array.map (fun l -> List.sort compare_edge l) preds in
  { name; entry; exit_; terms; preds }

let pp_attr ppf = function
  | Seq -> Fmt.string ppf "seq"
  | Taken b -> Fmt.pf ppf "taken(br%d)" b
  | Not_taken b -> Fmt.pf ppf "fall(br%d)" b

let pp_edge ppf e = Fmt.pf ppf "%d->%d[%a]" e.src e.dst pp_attr e.attr

let pp ppf t =
  Fmt.pf ppf "@[<v>cfg %s entry=%d exit=%d@," t.name t.entry t.exit_;
  iter_blocks
    (fun b ->
      match t.terms.(b) with
      | Return -> Fmt.pf ppf "  B%d: return@," b
      | Jump d -> Fmt.pf ppf "  B%d: jump B%d@," b d
      | Branch { branch; taken; not_taken } ->
          Fmt.pf ppf "  B%d: br%d ? B%d : B%d@," b branch taken not_taken)
    t;
  Fmt.pf ppf "@]"
