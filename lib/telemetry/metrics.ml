type counter = { cname : string; mutable count : int }
type gauge = { gname : string; mutable value : int }

type histogram = {
  hname : string;
  bounds : int array;
  buckets : int array;  (* length bounds + 1; last is the overflow bucket *)
  mutable n : int;
  mutable sum : int;
  mutable hmax : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (* registration order, newest first *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let register t name m =
  Hashtbl.replace t.tbl name m;
  t.order <- name :: t.order

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " registered with a different kind")

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> kind_error name
  | None ->
      let c = { cname = name; count = 0 } in
      register t name (Counter c);
      c

let incr ?(by = 1) c = c.count <- c.count + by
let value c = c.count

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> kind_error name
  | None ->
      let g = { gname = name; value = 0 } in
      register t name (Gauge g);
      g

let set g v = g.value <- v
let read g = g.value

let default_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]

let histogram ?(bounds = default_bounds) t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some _ -> kind_error name
  | None ->
      let h =
        {
          hname = name;
          bounds;
          buckets = Array.make (Array.length bounds + 1) 0;
          n = 0;
          sum = 0;
          hmax = 0;
        }
      in
      register t name (Histogram h);
      h

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v > h.hmax then h.hmax <- v;
  let nb = Array.length h.bounds in
  let rec slot i = if i >= nb || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.buckets.(i) <- h.buckets.(i) + 1

let observations h = h.n

let metrics t =
  List.rev_map (fun name -> Hashtbl.find t.tbl name) t.order

(* Fold [src] into [into]: counters and histograms add, gauges take
   the max — all three are commutative and associative, so the merged
   snapshot does not depend on worker count or completion order.
   Metrics absent from [into] are registered in [src]'s registration
   order. *)
let merge ~into src =
  if into == src then
    invalid_arg "Metrics.merge: cannot merge a registry into itself";
  List.iter
    (fun m ->
      match m with
      | Counter c ->
          let d = counter into c.cname in
          d.count <- d.count + c.count
      | Gauge g ->
          let d = gauge into g.gname in
          if g.value > d.value then d.value <- g.value
      | Histogram h ->
          let d = histogram ~bounds:h.bounds into h.hname in
          if d.bounds <> h.bounds then
            invalid_arg ("Metrics.merge: " ^ h.hname ^ " bucket bounds differ");
          d.n <- d.n + h.n;
          d.sum <- d.sum + h.sum;
          if h.hmax > d.hmax then d.hmax <- h.hmax;
          Array.iteri (fun i n -> d.buckets.(i) <- d.buckets.(i) + n) h.buckets)
    (metrics src)

(* One line per metric, in registration order — the comparable snapshot
   the parity tests diff. *)
let to_lines t =
  List.map
    (function
      | Counter c -> Fmt.str "%s %d" c.cname c.count
      | Gauge g -> Fmt.str "%s %d" g.gname g.value
      | Histogram h ->
          Fmt.str "%s count=%d sum=%d max=%d" h.hname h.n h.sum h.hmax)
    (metrics t)

let pp ppf t =
  List.iter (fun line -> Fmt.pf ppf "%s@." line) (to_lines t)

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string buf ",";
      (match m with
      | Counter c ->
          Buffer.add_string buf
            (Fmt.str "{\"name\":%s,\"kind\":\"counter\",\"value\":%d}"
               (Tjson.str c.cname) c.count)
      | Gauge g ->
          Buffer.add_string buf
            (Fmt.str "{\"name\":%s,\"kind\":\"gauge\",\"value\":%d}"
               (Tjson.str g.gname) g.value)
      | Histogram h ->
          Buffer.add_string buf
            (Fmt.str "{\"name\":%s,\"kind\":\"histogram\",\"count\":%d,\"sum\":%d,\"max\":%d,\"buckets\":["
               (Tjson.str h.hname) h.n h.sum h.hmax);
          Array.iteri
            (fun j n ->
              if j > 0 then Buffer.add_string buf ",";
              let le =
                if j < Array.length h.bounds then string_of_int h.bounds.(j)
                else "\"+Inf\""
              in
              Buffer.add_string buf (Fmt.str "{\"le\":%s,\"n\":%d}" le n))
            h.buckets;
          Buffer.add_string buf "]}"))
    (metrics t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
