(** Telemetry sink: a {!Metrics} registry plus an optional
    {!Trace} event tracer.

    Producers take a [t option]; [None] — the default everywhere —
    means no counters or hooks are created at all, keeping a disabled
    run bit-identical to the pre-telemetry build.  When enabled, all
    recording is host-side: nothing in this library charges simulated
    cycles. *)

type t

(** [tracing] enables the event tracer (default false: metrics only). *)
val create : ?tracing:bool -> ?trace_limit:int -> unit -> t

val metrics : t -> Metrics.t

(** [None] unless [create ~tracing:true]. *)
val trace : t -> Trace.t option

(** Fold a worker sink into the main sink: {!Metrics.merge} on the
    registries, {!Trace.merge} on the tracers when both have one. *)
val merge : into:t -> t -> unit

(** Open a new trace thread for a run (no-op without tracing). *)
val begin_run : t -> name:string -> unit

(** Record a span / instant on the current trace thread; no-ops
    without tracing. *)
val span :
  t -> ts:int -> dur:int -> cat:string -> name:string ->
  ?args:Trace.args -> unit -> unit

val instant :
  t -> ts:int -> cat:string -> name:string -> ?args:Trace.args -> unit -> unit
