(* Virtual-time event tracer in Chrome trace_event JSON format.

   Timestamps are simulated cycles, not wall-clock; every event is
   recorded against the current thread id so sequential runs with
   overlapping virtual timelines render as separate rows. *)

type args = (string * string) list

type event =
  | Span of { ts : int; dur : int; cat : string; name : string; args : args }
  | Instant of { ts : int; cat : string; name : string; args : args }
  | Thread_name of { tid : int; name : string }

type t = {
  limit : int;
  mutable events : event list;  (* newest first *)
  mutable n : int;
  mutable dropped : int;
  mutable cur_tid : int;
  mutable next_tid : int;
}

let create ?(limit = 1_000_000) () =
  { limit; events = []; n = 0; dropped = 0; cur_tid = 1; next_tid = 1 }

let push t e =
  if t.n >= t.limit then t.dropped <- t.dropped + 1
  else begin
    t.events <- e :: t.events;
    t.n <- t.n + 1
  end

let begin_thread t ~name =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  t.cur_tid <- tid;
  push t (Thread_name { tid; name });
  tid

let span t ~ts ~dur ~cat ~name ?(args = []) () =
  push t (Span { ts; dur; cat; name; args })

let instant t ~ts ~cat ~name ?(args = []) () =
  push t (Instant { ts; cat; name; args })

let events t = List.rev t.events
let length t = t.n
let dropped t = t.dropped

let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Tjson.str k);
      Buffer.add_string buf ":";
      Buffer.add_string buf (Tjson.str v))
    args;
  Buffer.add_string buf "}"

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let tid = ref 1 in
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",";
      (match e with
      | Thread_name { tid = id; name } ->
          tid := id;
          Buffer.add_string buf
            (Fmt.str
               "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}"
               id (Tjson.str name))
      | Span { ts; dur; cat; name; args } ->
          Buffer.add_string buf
            (Fmt.str
               "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"cat\":%s,\"name\":%s,\"args\":"
               !tid ts dur (Tjson.str cat) (Tjson.str name));
          add_args buf args;
          Buffer.add_string buf "}"
      | Instant { ts; cat; name; args } ->
          Buffer.add_string buf
            (Fmt.str
               "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"cat\":%s,\"name\":%s,\"args\":"
               !tid ts (Tjson.str cat) (Tjson.str name));
          add_args buf args;
          Buffer.add_string buf "}"))
    (events t);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents buf
