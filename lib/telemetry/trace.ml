(* Virtual-time event tracer in Chrome trace_event JSON format.

   Timestamps are simulated cycles, not wall-clock; every event is
   recorded against the current thread id so sequential runs with
   overlapping virtual timelines render as separate rows. *)

type args = (string * string) list

type event =
  | Span of {
      tid : int;
      ts : int;
      dur : int;
      cat : string;
      name : string;
      args : args;
    }
  | Instant of { tid : int; ts : int; cat : string; name : string; args : args }
  | Thread_name of { tid : int; name : string }

type t = {
  limit : int;
  mutable events : event list;  (* newest first *)
  mutable n : int;
  mutable dropped : int;
  mutable cur_tid : int;
  mutable next_tid : int;
}

let create ?(limit = 1_000_000) () =
  { limit; events = []; n = 0; dropped = 0; cur_tid = 1; next_tid = 1 }

let push t e =
  if t.n >= t.limit then t.dropped <- t.dropped + 1
  else begin
    t.events <- e :: t.events;
    t.n <- t.n + 1
  end

let begin_thread t ~name =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  t.cur_tid <- tid;
  push t (Thread_name { tid; name });
  tid

let span t ~ts ~dur ~cat ~name ?(args = []) () =
  push t (Span { tid = t.cur_tid; ts; dur; cat; name; args })

let instant t ~ts ~cat ~name ?(args = []) () =
  push t (Instant { tid = t.cur_tid; ts; cat; name; args })

let events t = List.rev t.events
let length t = t.n
let dropped t = t.dropped

(* Append every event of [src] to [into], remapping [src]'s thread ids
   onto fresh ids of [into] so rows from different sinks never collide.
   Event order within [src] is preserved; [into]'s current thread is
   untouched (events carry their tid explicitly).  Used to fold
   per-worker sinks back into the main sink after a parallel sweep. *)
let merge ~into src =
  if into == src then invalid_arg "Trace.merge: cannot merge a trace into itself";
  let map = Hashtbl.create 8 in
  let remap tid =
    match Hashtbl.find_opt map tid with
    | Some tid' -> tid'
    | None ->
        let tid' = into.next_tid in
        into.next_tid <- tid' + 1;
        Hashtbl.replace map tid tid';
        tid'
  in
  List.iter
    (fun e ->
      push into
        (match e with
        | Thread_name { tid; name } -> Thread_name { tid = remap tid; name }
        | Span s -> Span { s with tid = remap s.tid }
        | Instant i -> Instant { i with tid = remap i.tid }))
    (events src);
  into.dropped <- into.dropped + src.dropped

let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Tjson.str k);
      Buffer.add_string buf ":";
      Buffer.add_string buf (Tjson.str v))
    args;
  Buffer.add_string buf "}"

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",";
      (match e with
      | Thread_name { tid; name } ->
          Buffer.add_string buf
            (Fmt.str
               "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}"
               tid (Tjson.str name))
      | Span { tid; ts; dur; cat; name; args } ->
          Buffer.add_string buf
            (Fmt.str
               "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"cat\":%s,\"name\":%s,\"args\":"
               tid ts dur (Tjson.str cat) (Tjson.str name));
          add_args buf args;
          Buffer.add_string buf "}"
      | Instant { tid; ts; cat; name; args } ->
          Buffer.add_string buf
            (Fmt.str
               "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"cat\":%s,\"name\":%s,\"args\":"
               tid ts (Tjson.str cat) (Tjson.str name));
          add_args buf args;
          Buffer.add_string buf "}"))
    (events t);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents buf
