(* Folded-stack accumulator: "frame1;frame2 value" lines, the input
   format of flamegraph.pl / speedscope / pyroscope. *)

type t = { tbl : (string, int ref) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

(* Frame separators are structural in the folded format; strip them
   from frame names so stacks stay parseable. *)
let sanitize frame =
  String.map (fun c -> if c = ';' || c = ' ' || c = '\n' then '_' else c) frame

let add t ~stack value =
  if value > 0 then begin
    let key = String.concat ";" (List.map sanitize stack) in
    match Hashtbl.find_opt t.tbl key with
    | Some r -> r := !r + value
    | None -> Hashtbl.add t.tbl key (ref value)
  end

(* Accumulate every stack of [src] into [into] (used to merge
   per-window or per-cohort exports into one flamegraph). *)
let merge ~into src =
  Hashtbl.iter
    (fun key v ->
      match Hashtbl.find_opt into.tbl key with
      | Some r -> r := !r + !v
      | None -> Hashtbl.add into.tbl key (ref !v))
    src.tbl

let entries t =
  let l = Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.tbl [] in
  (* Hottest first; tie-break on the stack string for determinism. *)
  List.sort
    (fun (k1, v1) (k2, v2) ->
      if v1 <> v2 then compare v2 v1 else compare k1 k2)
    l

let total t = Hashtbl.fold (fun _ v acc -> acc + !v) t.tbl 0

let to_lines t =
  List.map (fun (k, v) -> Fmt.str "%s %d" k v) (entries t)

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"total\":";
  Buffer.add_string buf (string_of_int (total t));
  Buffer.add_string buf ",\"stacks\":[";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Fmt.str "{\"stack\":%s,\"value\":%d}" (Tjson.str k) v))
    (entries t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
