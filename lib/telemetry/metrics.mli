(** Metrics registry: named counters, gauges and histograms.

    Metrics are registered on first lookup and kept in registration
    order, so serialized output is deterministic for a deterministic
    program.  Updates are host-side only — a metric update never touches
    simulated cycles — and allocation-free ({!incr}, {!set} and
    {!observe} mutate fields in place). *)

type counter
type gauge
type histogram
type t

val create : unit -> t

(** Find or register.  @raise Invalid_argument if [name] is already
    registered with a different kind. *)
val counter : t -> string -> counter

val incr : ?by:int -> counter -> unit
val value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val read : gauge -> int

(** [bounds] are inclusive upper bucket bounds, strictly increasing; an
    overflow bucket is added past the last. *)
val histogram : ?bounds:int array -> t -> string -> histogram

val observe : histogram -> int -> unit
val observations : histogram -> int

(** [merge ~into src] folds [src]'s metrics into [into]: counters and
    histograms add, gauges take the max — all commutative and
    associative, so the merged snapshot is independent of worker count
    and completion order.  Metrics absent from [into] are registered in
    [src]'s registration order.  @raise Invalid_argument on [into ==
    src], a kind clash, or differing histogram bounds. *)
val merge : into:t -> t -> unit

(** One line per metric in registration order: ["name value"] for
    counters/gauges, ["name count=.. sum=.. max=.."] for histograms.
    The comparable snapshot the engine-parity tests diff. *)
val to_lines : t -> string list

val to_json : t -> string
val pp : t Fmt.t
