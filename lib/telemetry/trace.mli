(** Virtual-time event tracer emitting Chrome [trace_event] JSON.

    Timestamps and durations are simulated cycles.  Events carry the
    thread id current at record time; {!begin_thread} opens a new
    thread row, so sequential runs whose virtual timelines overlap
    render side by side in a trace viewer. *)

type t

type args = (string * string) list

(** [limit] bounds the number of retained events (default one
    million); events past the limit are counted in {!dropped}. *)
val create : ?limit:int -> unit -> t

(** Start a new trace thread named [name]; subsequent events are
    recorded against the returned tid. *)
val begin_thread : t -> name:string -> int

(** A complete span ("X" event): [ts] start, [dur] duration, both in
    simulated cycles. *)
val span :
  t -> ts:int -> dur:int -> cat:string -> name:string -> ?args:args -> unit -> unit

(** A thread-scoped instant ("i" event). *)
val instant : t -> ts:int -> cat:string -> name:string -> ?args:args -> unit -> unit

val length : t -> int
val dropped : t -> int

(** [merge ~into src] appends every event of [src] to [into],
    remapping [src]'s thread ids onto fresh ids of [into] so rows from
    different sinks never collide.  Event order within [src] is
    preserved and [into]'s current thread is unaffected.  Used to fold
    per-worker sinks back into the main sink after a parallel sweep.
    Raises [Invalid_argument] if [into == src]. *)
val merge : into:t -> t -> unit

(** Serialize as a Chrome [trace_event] JSON object
    ([{"traceEvents": [...]}]), in record order. *)
val to_json : t -> string
