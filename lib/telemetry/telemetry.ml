(* A telemetry sink: a metrics registry plus an optional event tracer.

   Producers receive a [t option]; [None] (the default everywhere)
   means no counters, hooks or events are created at all, so a
   disabled run is bit-identical to one built before telemetry
   existed.  When enabled, all recording is host-side — nothing here
   ever charges simulated cycles. *)

type t = { metrics : Metrics.t; trace : Trace.t option }

let create ?(tracing = false) ?trace_limit () =
  {
    metrics = Metrics.create ();
    trace = (if tracing then Some (Trace.create ?limit:trace_limit ()) else None);
  }

let metrics t = t.metrics
let trace t = t.trace

let merge ~into src =
  Metrics.merge ~into:into.metrics src.metrics;
  match (into.trace, src.trace) with
  | Some d, Some s -> Trace.merge ~into:d s
  | _, _ -> ()

let begin_run t ~name =
  match t.trace with
  | None -> ()
  | Some tr -> ignore (Trace.begin_thread tr ~name)

let span t ~ts ~dur ~cat ~name ?args () =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.span tr ~ts ~dur ~cat ~name ?args ()

let instant t ~ts ~cat ~name ?args () =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.instant tr ~ts ~cat ~name ?args ()
