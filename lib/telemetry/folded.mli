(** Folded-stack accumulator.

    Collects [stack -> value] samples and renders them in the
    ["frame1;frame2 value"] text format consumed by flamegraph.pl,
    speedscope and pyroscope, or as JSON.  Frame names are sanitized
    (';', ' ' and newlines replaced) so stacks stay parseable. *)

type t

val create : unit -> t

(** [add t ~stack v] accumulates [v] against [stack] (outermost frame
    first).  Non-positive values are ignored. *)
val add : t -> stack:string list -> int -> unit

(** [merge ~into src] accumulates every stack of [src] into [into]
    (e.g. per-window fleet exports into one flamegraph). *)
val merge : into:t -> t -> unit

(** Stacks with accumulated values, hottest first (ties broken by
    stack string, so output is deterministic). *)
val entries : t -> (string * int) list

val total : t -> int
val to_lines : t -> string list
val to_json : t -> string
