(** Minimal JSON string helpers shared by the telemetry serializers. *)

(** Escape for inclusion inside a JSON string literal. *)
val escape : string -> string

(** [str s] is [s] escaped and double-quoted. *)
val str : string -> string
