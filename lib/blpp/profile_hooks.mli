(** Interpreter hooks that execute instrumentation plans.

    The hook layer applies a per-method {!Instrument.t} against the live
    machine: it maintains the frame's path register, charges the cost
    model for every executed instrumentation operation, and calls the
    caller's [on_path_end] at every path-end point with the completed
    path number.  Both the perfect profilers ({!Profiler}) and PEP's
    sampler build on this. *)

type plans = Instrument.t option array

(** Why a method did or did not get an instrumentation plan.  The failure
    reasons are surfaced (rather than collapsed into [None]) so the VM
    driver can report unprofilable methods as diagnostics instead of
    silently dropping them. *)
type plan_outcome =
  | Planned of Instrument.t
  | Uninterruptible  (** no yieldpoints anywhere in the method *)
  | Too_many_paths of { n_paths : int; limit : int }
      (** path count exceeds the numbering limit *)
  | Truncation_unsupported of string
      (** {!Dag.build} cannot truncate the graph in this mode *)

(** Build the plan of one method: truncate in [mode] (sample points
    follow the machine's yieldpoint placement, so loop headers whose
    yieldpoint was suppressed — inlined uninterruptible loops — are cut
    silently, paper §4.3), number with [number], place instrumentation. *)
val plan_outcome :
  mode:Dag.mode ->
  number:(int -> Dag.t -> Numbering.t) ->
  Machine.t ->
  int ->
  plan_outcome

(** [plan_outcome] collapsed to an option: [None] for uninterruptible
    methods, methods whose path count exceeds the numbering limit, and
    graphs the truncation cannot handle. *)
val plan_for :
  mode:Dag.mode ->
  number:(int -> Dag.t -> Numbering.t) ->
  Machine.t ->
  int ->
  Instrument.t option

val make_plans :
  mode:Dag.mode -> number:(int -> Dag.t -> Numbering.t) -> Machine.t -> plans

(** [count_cost] is charged at every path-count/path-end point:
    [`Hash] for the paper's perfect profiler (inserted hash call),
    [`Array] for classic BLPP's array-indexed counter, [`None] for PEP,
    which charges sampling costs itself in [on_path_end].

    [on_register] is invoked at {e every} yieldpoint of a planned method
    with the live path-register value, before any path-end processing —
    the "pass r to the yieldpoint handler" of paper §4.3.  Mid-path
    values identify the partially taken path
    ({!Reconstruct.partial_dag_path}, paper §3.2). *)
val path_hooks :
  ?on_register:
    (Machine.t -> Interp.frame -> Cfg.block_id -> r:int -> unit) ->
  plans:plans ->
  count_cost:[ `Hash | `Array | `None ] ->
  on_path_end:(Machine.t -> Interp.frame -> path_id:int -> unit) ->
  unit ->
  Interp.hooks

(** Hooks of baseline-style edge instrumentation: bump the taken or
    not-taken counter of every executed conditional branch, charging
    [edge_count] cycles each ([charge] false turns the cost off, e.g.
    when modelling hardware-collected profiles). *)
val edge_count_hooks :
  ?charge:bool -> Machine.t -> table:Edge_profile.table -> Interp.hooks
