type path_profiler = {
  hooks : Interp.hooks;
  table : Path_profile.table;
  plans : Profile_hooks.plans;
}

let counting_profiler ~mode ~number ~count_cost st =
  let plans = Profile_hooks.make_plans ~mode ~number st in
  let table =
    Path_profile.create_table ~n_methods:(Array.length st.Machine.methods)
  in
  let on_path_end _st (frame : Interp.frame) ~path_id =
    Path_profile.incr table.(frame.fmeth) path_id
  in
  let hooks = Profile_hooks.path_hooks ~plans ~count_cost ~on_path_end () in
  { hooks; table; plans }

let perfect_path ?(number = fun _ dag -> Numbering.ball_larus dag) st =
  counting_profiler ~mode:Dag.Loop_header ~number ~count_cost:`Hash st

let classic_blpp ?(number = fun _ dag -> Numbering.ball_larus dag) st =
  counting_profiler ~mode:Dag.Back_edge ~number ~count_cost:`Array st

type edge_profiler = { ehooks : Interp.hooks; etable : Edge_profile.table }

let perfect_edge st =
  let etable =
    Edge_profile.create_table ~n_methods:(Array.length st.Machine.methods)
  in
  { ehooks = Profile_hooks.edge_count_hooks st ~table:etable; etable }

let resolve_entry plans (table : Path_profile.table) ~meth ~path_id =
  let e = Path_profile.entry table.(meth) path_id in
  (match e.Path_profile.edges with
  | Some _ -> ()
  | None -> (
      match plans.(meth) with
      | None ->
          e.edges <- Some [];
          e.n_branches <- 0
      | Some plan ->
          let edges = Reconstruct.cfg_edges plan.Instrument.numbering path_id in
          e.edges <- Some edges;
          e.n_branches <-
            List.length
              (List.filter
                 (fun (ce : Cfg.edge) ->
                   match ce.attr with
                   | Cfg.Taken _ | Cfg.Not_taken _ -> true
                   | Cfg.Seq -> false)
                 edges)));
  e

let n_branches_resolver plans table ~meth ~path_id =
  (resolve_entry plans table ~meth ~path_id).Path_profile.n_branches

let edges_of_paths ~n_methods plans (table : Path_profile.table) =
  let etable = Edge_profile.create_table ~n_methods in
  Array.iteri
    (fun meth prof ->
      Path_profile.iter
        (fun (e : Path_profile.entry) ->
          if e.count > 0 then begin
            let resolved = resolve_entry plans table ~meth ~path_id:e.path_id in
            List.iter
              (fun (ce : Cfg.edge) ->
                match ce.attr with
                | Cfg.Taken br ->
                    Edge_profile.add etable.(meth) br ~taken:true e.count
                | Cfg.Not_taken br ->
                    Edge_profile.add etable.(meth) br ~taken:false e.count
                | Cfg.Seq -> ())
              (Option.value ~default:[] resolved.Path_profile.edges)
          end)
        prof)
    table;
  etable
