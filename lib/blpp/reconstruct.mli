(** Greedy reconstruction of a path from its Ball-Larus path number
    (paper §3.3): walk the DAG from its entry, at each node following the
    unique out-edge whose value interval contains the remaining number.

    Works for both {!Numbering.ball_larus} and {!Numbering.smart}, whose
    out-edge values are prefix sums in some order and therefore partition
    the node's number range. *)

(** Full DAG path, dummy edges included.
    @raise Invalid_argument if the id is outside [0, n_paths). *)
val dag_path : Numbering.t -> int -> Dag.edge list

(** The path's real CFG edges, in path order (dummies dropped). *)
val cfg_edges : Numbering.t -> int -> Cfg.edge list

(** Number of conditional-branch edges on the path — the path's length in
    branches, [b_p] of the branch-flow metric. *)
val n_branches : Numbering.t -> int -> int

(** [id_of_dag_path numbering edges] is the inverse of {!dag_path}: the
    sum of the path's edge values. *)
val id_of_dag_path : Numbering.t -> Dag.edge list -> int

(** Partial-path reconstruction (paper §3.2): in a system without
    thread-switching points, a sample can land mid-path, delivering the
    partial sum accumulated so far and the sampled program point.  The
    same greedy walk recovers the partially taken path: at each node take
    the out-edge with the largest value not exceeding the remainder,
    stopping at [stop_node].

    @raise Invalid_argument if [partial_sum] cannot reach [stop_node]
    (the pair did not come from a real execution of this numbering). *)
val partial_dag_path :
  Numbering.t -> stop_node:Dag.node -> int -> Dag.edge list

(** Real CFG edges of the partial path. *)
val partial_cfg_edges :
  Numbering.t -> stop_node:Dag.node -> int -> Cfg.edge list
