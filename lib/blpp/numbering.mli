(** Ball-Larus path numbering over a truncated DAG.

    Assigns an integer value to every DAG edge such that the sum of edge
    values along each entry-to-exit path is a unique number in
    [0, n_paths).  {!ball_larus} is the paper's Figure 2; {!smart} is
    PPP's smart path numbering (Figure 4), which orders each node's
    outgoing edges by execution frequency so that the chosen arm — the
    hottest by default — receives value 0 and needs no instrumentation.

    The numbering has the interval property used by {!Reconstruct}: the
    paths through edge [e = v -> w] are exactly those whose remaining
    number at [v] lies in [value e, value e + num_paths_from w). *)

type t

exception Too_many_paths of { method_name : string; n_paths : int; limit : int }

(** Methods whose path count exceeds [limit] (default [2^30]) raise
    {!Too_many_paths}; callers treat such methods as unprofilable. *)
val ball_larus : ?limit:int -> Dag.t -> t

(** [smart ~freq dag] numbers with each node's out-edges visited in
    decreasing [freq] order ([`Hottest] zero, the default), or increasing
    order ([`Coldest] zero — the paper's §3.4 ablation that instead
    instruments hot edges).  Ties fall back to insertion order, so a
    constant [freq] degrades to {!ball_larus}. *)
val smart :
  ?limit:int ->
  ?zero:[ `Hottest | `Coldest ] ->
  freq:(Dag.edge -> int) ->
  Dag.t ->
  t

val dag : t -> Dag.t
val n_paths : t -> int
val value : t -> Dag.edge -> int

(** Number of entry-to-exit DAG paths starting at a node. *)
val num_paths_from : t -> Dag.node -> int

(** Number of DAG edges with a nonzero value — the adds the
    instrumentation must place. *)
val n_nonzero : t -> int

val pp : t Fmt.t
