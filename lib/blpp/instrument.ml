type edge_step = { add : int; count : bool; reset : int }
type block_event = { badd : int; breset : int }

type t = {
  numbering : Numbering.t;
  edge_steps : edge_step option array array;
  path_end : block_event option array;
}

let succ_index : Cfg.edge_attr -> int = function
  | Cfg.Seq | Cfg.Taken _ -> 0
  | Cfg.Not_taken _ -> 1

let of_numbering numbering =
  let dag = Numbering.dag numbering in
  let cfg = Dag.cfg dag in
  let n = Cfg.n_blocks cfg in
  let edge_steps = Array.init n (fun _ -> Array.make 2 None) in
  let path_end = Array.make n None in
  (* real edges: r += value when nonzero *)
  Dag.iter_edges
    (fun (e : Dag.edge) ->
      match e.origin with
      | Dag.Real ce ->
          let v = Numbering.value numbering e in
          if v <> 0 then
            edge_steps.(ce.src).(succ_index ce.attr) <-
              Some { add = v; count = false; reset = -1 }
      | Dag.From_entry _ | Dag.To_exit _ -> ())
    dag;
  (* truncations *)
  List.iter
    (fun trunc ->
      let to_exit, from_entry = Dag.dummy_edges dag trunc in
      let badd = Numbering.value numbering to_exit in
      let breset = Numbering.value numbering from_entry in
      match trunc with
      | Dag.Split_header h -> path_end.(h) <- Some { badd; breset }
      | Dag.Cut_edge ce ->
          let count =
            match Dag.mode dag with
            | Dag.Back_edge -> true
            | Dag.Loop_header -> false
          in
          edge_steps.(ce.src).(succ_index ce.attr) <-
            Some { add = badd; count; reset = breset })
    (Dag.truncations dag);
  (* every path ends at the exit block *)
  path_end.(Cfg.exit_ cfg) <- Some { badd = 0; breset = -1 };
  { numbering; edge_steps; path_end }

let static_ops t =
  let ops = ref 1 (* r = 0 at method entry *) in
  Array.iter
    (fun steps ->
      Array.iter
        (function
          | None -> ()
          | Some { add; count; reset } ->
              if add <> 0 then incr ops;
              if count then incr ops;
              if reset >= 0 then incr ops)
        steps)
    t.edge_steps;
  Array.iter
    (function
      | None -> ()
      | Some { badd; breset } ->
          incr ops;
          (* the path-end point itself *)
          if badd <> 0 then incr ops;
          if breset >= 0 then incr ops)
    t.path_end;
  !ops

let ops_on_edge t ~src ~idx =
  match t.edge_steps.(src).(idx) with
  | None -> 0
  | Some { add; count; reset } ->
      (if add <> 0 then 1 else 0)
      + (if count then 1 else 0)
      + if reset >= 0 then 1 else 0
