type slot = {
  mutable meth : int;  (* -1 = empty *)
  mutable path_id : int;
  mutable count : int;
}

type t = {
  n_methods : int;
  table : slot array;
  mask : int;
  plans : Profile_hooks.plans;
  hooks : Interp.hooks;
  mutable seen : int;
  mutable evictions : int;
}

let hash_pair meth path_id = (meth * 0x9E3779B1) lxor (path_id * 0x85EBCA77)

let create ~table_size ~number st =
  assert (table_size > 0 && table_size land (table_size - 1) = 0);
  let plans = Profile_hooks.make_plans ~mode:Dag.Loop_header ~number st in
  let table =
    Array.init table_size (fun _ -> { meth = -1; path_id = 0; count = 0 })
  in
  let t_ref = ref None in
  let on_path_end _st (frame : Interp.frame) ~path_id =
    let t = Option.get !t_ref in
    t.seen <- t.seen + 1;
    let meth = frame.Interp.fmeth in
    let slot = t.table.(hash_pair meth path_id land t.mask) in
    if slot.meth = meth && slot.path_id = path_id then
      slot.count <- slot.count + 1
    else if slot.meth = -1 then begin
      slot.meth <- meth;
      slot.path_id <- path_id;
      slot.count <- 1
    end
    else begin
      (* frequent-items decay: cold residents give way to hot newcomers *)
      slot.count <- slot.count - 1;
      if slot.count <= 0 then begin
        t.evictions <- t.evictions + 1;
        slot.meth <- meth;
        slot.path_id <- path_id;
        slot.count <- 1
      end
    end
  in
  (* the hardware computes path numbers for free: no count cost *)
  let hooks = Profile_hooks.path_hooks ~plans ~count_cost:`None ~on_path_end () in
  let t =
    {
      n_methods = Array.length st.Machine.methods;
      table;
      mask = table_size - 1;
      plans;
      hooks;
      seen = 0;
      evictions = 0;
    }
  in
  t_ref := Some t;
  t

let hooks t = t.hooks
let plans t = t.plans

let to_path_profile t =
  let out = Path_profile.create_table ~n_methods:t.n_methods in
  Array.iter
    (fun slot ->
      if slot.meth >= 0 then Path_profile.add out.(slot.meth) slot.path_id slot.count)
    t.table;
  out

let stats t = (t.seen, t.evictions)
