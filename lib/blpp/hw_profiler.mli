(** A programmable hardware path profiler (paper §2.4, ref [28]).

    Models Vaswani et al.'s design: the processor computes path numbers
    itself and updates a fixed-size on-chip {e hot path table} at every
    path end with no software cost; accuracy is limited only by table
    capacity.  The table is direct-mapped on a hash of (method, path id);
    on a miss the resident entry's count decays and is evicted when it
    reaches zero (the standard frequent-items policy), so hot paths
    survive collisions with cold ones.

    Runtime cost charged: none (it is hardware) — the comparator isolates
    the accuracy question "how large must the table be?", which the paper
    cites as >90% accuracy for sufficiently large tables. *)

type t

(** [create ~table_size ~number machine] with [table_size] a power of
    two. *)
val create :
  table_size:int ->
  number:(int -> Dag.t -> Numbering.t) ->
  Machine.t ->
  t

val hooks : t -> Interp.hooks
val plans : t -> Profile_hooks.plans

(** Snapshot of the surviving table entries as a path profile. *)
val to_path_profile : t -> Path_profile.table

(** Path ends seen / table misses that evicted an entry. *)
val stats : t -> int * int
