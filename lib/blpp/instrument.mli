(** Instrumentation plans: where the path-register updates, path-count
    points and path-restart resets of a numbered method live.

    A plan is pure data; {!Profile_hooks} (and PEP's sampler on top of it)
    interprets plans against the running machine.

    Placement follows the paper:
    - [r = 0] on method entry;
    - [r += v] on every real CFG edge whose DAG value is nonzero;
    - on a cut back/irreducible edge: [r += v_to_exit]; a path-count
      point (classic BLPP only — in loop-header mode an irreducible cut
      is silent, mirroring uninterruptible loop headers); [r = v_restart];
    - at a split loop header's yieldpoint: [r += v_to_exit]; a path-end
      point; [r = v_restart];
    - at the exit block's yieldpoint: a path-end point. *)

type edge_step = {
  add : int;  (** r += add (0 = absent) *)
  count : bool;  (** path-count point on this edge (classic BLPP back edge) *)
  reset : int;  (** r = reset after the count (-1 = absent) *)
}

type block_event = {
  badd : int;  (** r += badd before the path ends (0 = absent) *)
  breset : int;  (** r = breset to start the next path (-1 = absent) *)
}

type t = {
  numbering : Numbering.t;
  edge_steps : edge_step option array array;
      (** per block, per successor index (0 = jump/taken, 1 = not-taken) *)
  path_end : block_event option array;
      (** per block: path ends at this block's yieldpoint (split headers
          and the exit block) *)
}

val of_numbering : Numbering.t -> t

(** Successor index of a CFG edge attribute (0 = jump/taken, 1 = not-taken). *)
val succ_index : Cfg.edge_attr -> int

(** Static count of inserted operations (adds, resets, count points) —
    the quantity profile-guided placement minimizes, and a proxy for the
    instrumentation's compile-time footprint. *)
val static_ops : t -> int

(** Dynamic r-operations the plan would execute on one traversal of the
    given edge ([0..2]); used by tests. *)
val ops_on_edge : t -> src:int -> idx:int -> int
