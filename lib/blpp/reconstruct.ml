let dag_path numbering path_id =
  let dag = Numbering.dag numbering in
  let n = Numbering.n_paths numbering in
  if path_id < 0 || path_id >= n then
    invalid_arg
      (Fmt.str "Reconstruct.dag_path: id %d outside [0, %d)" path_id n);
  let exit_node = Dag.exit_node dag in
  let rec walk node rem acc =
    if node = exit_node then List.rev acc
    else begin
      let e =
        List.find
          (fun (e : Dag.edge) ->
            let v = Numbering.value numbering e in
            rem >= v && rem < v + Numbering.num_paths_from numbering e.edst)
          (Dag.out_edges dag node)
      in
      walk e.edst (rem - Numbering.value numbering e) (e :: acc)
    end
  in
  walk (Dag.entry_node dag) path_id []

let cfg_edges numbering path_id =
  List.filter_map
    (fun (e : Dag.edge) ->
      match e.origin with
      | Dag.Real ce -> Some ce
      | Dag.From_entry _ | Dag.To_exit _ -> None)
    (dag_path numbering path_id)

let n_branches numbering path_id =
  List.length
    (List.filter
       (fun (e : Cfg.edge) ->
         match e.attr with
         | Cfg.Taken _ | Cfg.Not_taken _ -> true
         | Cfg.Seq -> false)
       (cfg_edges numbering path_id))

let id_of_dag_path numbering edges =
  List.fold_left (fun acc e -> acc + Numbering.value numbering e) 0 edges

(* A partial sum at node [w] is a prefix of some complete path, so it is
   bounded by [num_paths_from w); the interval argument that makes full
   reconstruction greedy therefore applies step by step to prefixes too. *)
let partial_dag_path numbering ~stop_node partial_sum =
  let dag = Numbering.dag numbering in
  let fail () =
    invalid_arg
      (Fmt.str "Reconstruct.partial_dag_path: sum %d cannot reach node %d"
         partial_sum stop_node)
  in
  let rec walk node rem acc =
    if node = stop_node then begin
      if rem <> 0 then fail ();
      List.rev acc
    end
    else
      match
        List.find_opt
          (fun (e : Dag.edge) ->
            let v = Numbering.value numbering e in
            rem >= v && rem < v + Numbering.num_paths_from numbering e.edst)
          (Dag.out_edges dag node)
      with
      | Some e -> walk e.edst (rem - Numbering.value numbering e) (e :: acc)
      | None -> fail ()
  in
  if partial_sum < 0 then fail ();
  walk (Dag.entry_node dag) partial_sum []

let real_edges dag_edges =
  List.filter_map
    (fun (e : Dag.edge) ->
      match e.origin with
      | Dag.Real ce -> Some ce
      | Dag.From_entry _ | Dag.To_exit _ -> None)
    dag_edges

let partial_cfg_edges numbering ~stop_node partial_sum =
  real_edges (partial_dag_path numbering ~stop_node partial_sum)
