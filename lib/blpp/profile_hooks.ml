type plans = Instrument.t option array

type plan_outcome =
  | Planned of Instrument.t
  | Uninterruptible
  | Too_many_paths of { n_paths : int; limit : int }
  | Truncation_unsupported of string

let plan_outcome ~mode ~number st midx =
  let cm = Machine.cmeth st midx in
  if cm.Machine.meth.Method.uninterruptible then Uninterruptible
  else
    let sampleable b = cm.Machine.yieldpoint.(b) in
    match number midx (Dag.build ~sampleable mode cm.Machine.cfg) with
    | numbering -> Planned (Instrument.of_numbering numbering)
    | exception Numbering.Too_many_paths { n_paths; limit; _ } ->
        Too_many_paths { n_paths; limit }
    | exception Dag.Unsupported msg -> Truncation_unsupported msg

let plan_for ~mode ~number st midx =
  match plan_outcome ~mode ~number st midx with
  | Planned plan -> Some plan
  | Uninterruptible | Too_many_paths _ | Truncation_unsupported _ -> None

let make_plans ~mode ~number st =
  Array.init (Array.length st.Machine.methods) (plan_for ~mode ~number st)

(* Each hook layer keeps its own per-invocation path register, indexed by
   the machine's live call depth.  Layers therefore compose: PEP and a
   perfect profiler can instrument the same run without clobbering each
   other's register (a real system would allocate distinct registers or
   stack slots per instrumentation). *)
let path_hooks ?on_register ~(plans : plans) ~count_cost ~on_path_end () =
  let regs = ref (Array.make 1024 0) in
  let slot (st : Machine.t) =
    let depth = st.depth in
    if depth >= Array.length !regs then begin
      let bigger = Array.make (2 * depth) 0 in
      Array.blit !regs 0 bigger 0 (Array.length !regs);
      regs := bigger
    end;
    depth
  in
  let charge_count st =
    let cost = (st : Machine.t).cost in
    match count_cost with
    | `Hash -> Machine.add_cycles st cost.Cost_model.count_update
    | `Array -> Machine.add_cycles st cost.Cost_model.count_array
    | `None -> ()
  in
  let on_entry st (frame : Interp.frame) =
    match plans.(frame.fmeth) with
    | None -> ()
    | Some _ ->
        !regs.(slot st) <- 0;
        Machine.add_cycles st st.Machine.cost.Cost_model.r_update
  in
  let on_edge st (frame : Interp.frame) ~src ~idx ~dst:_ =
    match plans.(frame.fmeth) with
    | None -> ()
    (* a frame compiled before its method was replaced by a smaller body
       can deliver block ids beyond the new plan; ignore such events *)
    | Some plan when src >= Array.length plan.Instrument.edge_steps -> ()
    | Some plan -> (
        match plan.Instrument.edge_steps.(src).(idx) with
        | None -> ()
        | Some { add; count; reset } ->
            let cost = st.Machine.cost in
            let d = slot st in
            if add <> 0 then begin
              !regs.(d) <- !regs.(d) + add;
              Machine.add_cycles st cost.Cost_model.r_update
            end;
            if count then begin
              charge_count st;
              on_path_end st frame ~path_id:!regs.(d)
            end;
            if reset >= 0 then begin
              !regs.(d) <- reset;
              Machine.add_cycles st cost.Cost_model.r_update
            end)
  in
  let on_yieldpoint st (frame : Interp.frame) blk =
    match plans.(frame.fmeth) with
    | None -> ()
    | Some plan when blk >= Array.length plan.Instrument.path_end -> ()
    | Some plan -> (
        (* the yieldpoint passes the current register to the handler
           (paper §4.3) even when the block is not a path end — partial
           samples use it (§3.2) *)
        (match on_register with
        | Some f -> f st frame blk ~r:!regs.(slot st)
        | None -> ());
        match plan.Instrument.path_end.(blk) with
        | None -> ()
        | Some { badd; breset } ->
            let cost = st.Machine.cost in
            let d = slot st in
            if badd <> 0 then begin
              !regs.(d) <- !regs.(d) + badd;
              Machine.add_cycles st cost.Cost_model.r_update
            end;
            charge_count st;
            on_path_end st frame ~path_id:!regs.(d);
            if breset >= 0 then begin
              !regs.(d) <- breset;
              Machine.add_cycles st cost.Cost_model.r_update
            end)
  in
  {
    Interp.on_entry = Some on_entry;
    on_exit = None;
    on_edge = Some on_edge;
    on_yieldpoint = Some on_yieldpoint;
  }

let edge_count_hooks ?(charge = true) st ~(table : Edge_profile.table) =
  let branch_of =
    Array.map
      (fun (cm : Machine.cmeth) ->
        Array.init (Cfg.n_blocks cm.cfg) (fun b ->
            match Cfg.terminator cm.cfg b with
            | Cfg.Branch { branch; _ } -> branch
            | Cfg.Return | Cfg.Jump _ -> -1))
      st.Machine.methods
  in
  let on_edge st (frame : Interp.frame) ~src ~idx ~dst:_ =
    let br = branch_of.(frame.fmeth).(src) in
    if br >= 0 then begin
      Edge_profile.incr table.(frame.fmeth) br ~taken:(idx = 0);
      if charge then
        Machine.add_cycles st st.Machine.cost.Cost_model.edge_count
    end
  in
  {
    Interp.on_entry = None;
    on_exit = None;
    on_edge = Some on_edge;
    on_yieldpoint = None;
  }
