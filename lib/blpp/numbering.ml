type t = {
  dag : Dag.t;
  values : int array; (* per edge idx *)
  num_paths : int array; (* per node *)
}

exception Too_many_paths of { method_name : string; n_paths : int; limit : int }

let default_limit = 1 lsl 30

(* Fig. 2 / Fig. 4: walk nodes in reverse topological order; for each node
   assign successive prefix sums of successor path counts to its out-edges
   in [order]. *)
let number ?(limit = default_limit) ~order dag =
  let n_nodes = Dag.n_nodes dag in
  let num_paths = Array.make n_nodes 0 in
  let values = Array.make (Dag.n_edges dag) 0 in
  let topo = Dag.topo dag in
  let exit_node = Dag.exit_node dag in
  for i = Array.length topo - 1 downto 0 do
    let v = topo.(i) in
    if v = exit_node then num_paths.(v) <- 1
    else begin
      let edges = order v (Dag.out_edges dag v) in
      List.iter
        (fun (e : Dag.edge) ->
          values.(e.idx) <- num_paths.(v);
          num_paths.(v) <- num_paths.(v) + num_paths.(e.edst))
        edges;
      if num_paths.(v) > limit then
        raise
          (Too_many_paths
             {
               method_name = Cfg.name (Dag.cfg dag);
               n_paths = num_paths.(v);
               limit;
             })
    end
  done;
  { dag; values; num_paths }

let ball_larus ?limit dag = number ?limit ~order:(fun _ edges -> edges) dag

let smart ?limit ?(zero = `Hottest) ~freq dag =
  (* Stable sort so equal frequencies keep insertion order. *)
  let order _ edges =
    let keyed = List.map (fun e -> (freq e, e)) edges in
    let cmp (fa, _) (fb, _) =
      match zero with `Hottest -> compare fb fa | `Coldest -> compare fa fb
    in
    List.map snd (List.stable_sort cmp keyed)
  in
  number ?limit ~order dag

let dag t = t.dag
let n_paths t = t.num_paths.(Dag.entry_node t.dag)
let value t (e : Dag.edge) = t.values.(e.idx)
let num_paths_from t v = t.num_paths.(v)

let n_nonzero t =
  Array.fold_left (fun acc v -> if v <> 0 then acc + 1 else acc) 0 t.values

let pp ppf t =
  Fmt.pf ppf "@[<v>numbering %s: %d paths@," (Cfg.name (Dag.cfg t.dag)) (n_paths t);
  Dag.iter_edges
    (fun e ->
      if t.values.(e.idx) <> 0 then
        Fmt.pf ppf "  n%d->n%d += %d@," e.esrc e.edst t.values.(e.idx))
    t.dag;
  Fmt.pf ppf "@]"
