(** Fleet identity records.

    The one snapshot-identity API shared by the collector, the segment
    store's keys and the query layer's filters: a snapshot belongs to
    exactly one ({!Cohort}, {!Instance_id}, {!Window}) triple.
    Canonical strings exist only at the store boundary (the [key]
    functions); the only deliberately-stringly identity is
    [Cohort.config_key], inherited from {!Exp_harness.config_key}. *)

module Drift : sig
  (** What the collector does to an instance's phase global over time;
      workload code only reads it, so [No_drift] cohorts stay in phase
      0 — the control group of every diff. *)
  type t = No_drift | Phase_shift of { at_window : int; phase : int }

  (** The phase value in effect while collecting [window]. *)
  val phase : t -> window:int -> int

  val key : t -> string
end

module Cohort : sig
  (** Workload × configuration × drift plan: the unit fleet diffs
      compare (and the unit instances are replicated under). *)
  type t = {
    name : string;
    workload : string;  (** workload name *)
    size : int;
    seed : int;
    config_key : string;  (** an {!Exp_harness.config_key} *)
    drift : Drift.t;
  }

  val key : t -> string
  val equal : t -> t -> bool
end

module Instance_id : sig
  type t = { cohort : Cohort.t; ordinal : int }

  (** Deterministic per-instance PRNG seed: same cohort seed, distinct
      request stream per ordinal. *)
  val seed : t -> int

  val key : t -> string
end

module Window : sig
  (** Inclusive collection-interval index range plus its bounds in
      virtual cycles.  Raw snapshots cover one interval ([lo = hi]);
      merged segments and query aggregates span several. *)
  type t = { lo : int; hi : int; start_cycle : int; end_cycle : int }

  val raw : index:int -> start_cycle:int -> end_cycle:int -> t
  val span : t -> t -> t
  val contains : t -> int -> bool
  val key : t -> string
end
