(* Fleet identity records.

   Every snapshot the continuous-profiling service handles is owned by
   exactly one (cohort, instance, window) triple, and the same records
   flow through the collector, the segment store's keys and the query
   layer's filters — canonical strings exist only at the store
   boundary, derived via the [key] functions below ([config_key] being
   the one deliberately-stringly identity, inherited from the
   experiment harness). *)

module Drift = struct
  (* What the collector does to an instance's phase global over time.
     The workload only reads the global, so [No_drift] cohorts stay in
     phase 0 forever — the control group of every diff. *)
  type t = No_drift | Phase_shift of { at_window : int; phase : int }

  let phase t ~window =
    match t with
    | No_drift -> 0
    | Phase_shift { at_window; phase } -> if window >= at_window then phase else 0

  let key = function
    | No_drift -> "steady"
    | Phase_shift { at_window; phase } -> Fmt.str "shift@%d=%d" at_window phase
end

module Cohort = struct
  (* workload × configuration × fault/drift plan; [config_key] is an
     [Exp_harness.config_key] so fleet identities digest the same
     configuration space as the run cache *)
  type t = {
    name : string;
    workload : string;
    size : int;
    seed : int;
    config_key : string;
    drift : Drift.t;
  }

  let key c =
    Fmt.str "cohort=%s|workload=%s|size=%d|seed=%d|cfg=%s|drift=%s" c.name
      c.workload c.size c.seed c.config_key (Drift.key c.drift)

  let equal a b = key a = key b
end

module Instance_id = struct
  type t = { cohort : Cohort.t; ordinal : int }

  (* Distinct, deterministic PRNG seed per instance: same cohort seed,
     different request streams across the fleet. *)
  let seed t = t.cohort.Cohort.seed + ((t.ordinal + 1) * 7919)
  let key t = Fmt.str "%s|inst=%d" (Cohort.key t.cohort) t.ordinal
end

module Window = struct
  (* Inclusive index range plus its bounds in virtual cycles.  A raw
     snapshot covers one collection interval ([lo = hi]); merged
     segments and query aggregates span several. *)
  type t = { lo : int; hi : int; start_cycle : int; end_cycle : int }

  let raw ~index ~start_cycle ~end_cycle =
    { lo = index; hi = index; start_cycle; end_cycle }

  let span a b =
    {
      lo = min a.lo b.lo;
      hi = max a.hi b.hi;
      start_cycle = min a.start_cycle b.start_cycle;
      end_cycle = max a.end_cycle b.end_cycle;
    }

  let contains t index = t.lo <= index && index <= t.hi
  let key t = Fmt.str "win=%d-%d" t.lo t.hi
end
