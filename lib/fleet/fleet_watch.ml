(* Standing watch over the segment store.

   Triage ([Fleet_query.diff]) answers "what changed between these two
   window ranges" once; the watch runs that question continuously: a
   fixed early-window baseline per cohort, one evaluation per
   subsequent window, and a persisted rule set deciding which findings
   deserve an alert.  Three mechanisms keep the output operable:

   - hysteresis: a finding must hold for [persist] consecutive windows
     before its rule fires (one-window flaps are suppressed and
     counted);
   - dedup: a finding that already fired never fires again while it
     persists — the alert stream carries state changes, not state;
   - degraded-data annotation: an alert whose current or baseline
     window was rebuilt from quarantine or lost data is marked, so an
     operator knows the evidence is weaker than usual.

   Everything is a pure function of (segments, rules, degraded log);
   alerts come back sorted, so watch output is as deterministic as the
   store it reads. *)

type family = New_hot_path | Edge_shift | Caller_change

let family_name = function
  | New_hot_path -> "new-hot-path"
  | Edge_shift -> "edge-shift"
  | Caller_change -> "caller-change"

let family_of_name = function
  | "new-hot-path" -> Some New_hot_path
  | "edge-shift" -> Some Edge_shift
  | "caller-change" -> Some Caller_change
  | _ -> None

let family_of_finding = function
  | Fleet_query.New_hot_path _ -> New_hot_path
  | Fleet_query.Edge_shift _ -> Edge_shift
  | Fleet_query.Caller_change _ -> Caller_change

type rule = {
  name : string;
  cohort : string option;
  families : family list;
  persist : int;
  min_share : float option;
  min_shift : float option;
}

let default_rules ?(persist = 1) () =
  [
    {
      name = "drift";
      cohort = None;
      families = [];
      persist = max 1 persist;
      min_share = None;
      min_shift = None;
    };
  ]

let rule_to_line r =
  let buf = Buffer.create 48 in
  Buffer.add_string buf r.name;
  let add fmt = Fmt.kstr (fun s -> Buffer.add_char buf ' '; Buffer.add_string buf s) fmt in
  (match r.cohort with Some c -> add "cohort=%s" c | None -> ());
  (match r.families with
  | [] -> ()
  | fams ->
      add "family=%s" (String.concat "," (List.map family_name fams)));
  if r.persist <> 1 then add "persist=%d" r.persist;
  (match r.min_share with Some f -> add "min-share=%.12g" f | None -> ());
  (match r.min_shift with Some f -> add "min-shift=%.12g" f | None -> ());
  Buffer.contents buf

let rule_err line reason = Error (Fmt.str "bad alert rule %S: %s" line reason)

let parse_rule line =
  match
    List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim line))
  with
  | [] -> rule_err line "empty rule"
  | name :: opts ->
      if String.contains name '=' then
        rule_err line "first token must be the rule name"
      else begin
        let base =
          {
            name;
            cohort = None;
            families = [];
            persist = 1;
            min_share = None;
            min_shift = None;
          }
        in
        let rec go r = function
          | [] -> Ok r
          | opt :: rest -> (
              match String.index_opt opt '=' with
              | None -> rule_err line (Fmt.str "unknown option %S" opt)
              | Some i -> (
                  let k = String.sub opt 0 i in
                  let v = String.sub opt (i + 1) (String.length opt - i - 1) in
                  match k with
                  | "cohort" -> go { r with cohort = Some v } rest
                  | "family" -> (
                      let names = String.split_on_char ',' v in
                      match
                        List.fold_left
                          (fun acc n ->
                            match (acc, family_of_name n) with
                            | Ok fams, Some f -> Ok (fams @ [ f ])
                            | Ok _, None -> Error n
                            | (Error _ as e), _ -> e)
                          (Ok []) names
                      with
                      | Ok fams -> go { r with families = fams } rest
                      | Error n ->
                          rule_err line (Fmt.str "unknown family %S" n))
                  | "persist" -> (
                      match int_of_string_opt v with
                      | Some n when n >= 1 -> go { r with persist = n } rest
                      | Some _ | None ->
                          rule_err line "persist wants an integer >= 1")
                  | "min-share" -> (
                      match float_of_string_opt v with
                      | Some f when f >= 0. && f <= 1. ->
                          go { r with min_share = Some f } rest
                      | Some _ | None ->
                          rule_err line "min-share wants a fraction in [0,1]")
                  | "min-shift" -> (
                      match float_of_string_opt v with
                      | Some f when f >= 0. && f <= 1. ->
                          go { r with min_shift = Some f } rest
                      | Some _ | None ->
                          rule_err line "min-shift wants a fraction in [0,1]")
                  | _ -> rule_err line (Fmt.str "unknown option %S" k)))
        in
        go base opts
      end

let parse_rules text =
  let lines = String.split_on_char '\n' text in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        if String.trim line = "" then go acc (n + 1) rest
        else
          match parse_rule line with
          | Ok r -> go (r :: acc) (n + 1) rest
          | Error m -> Error (Fmt.str "line %d: %s" n m))
  in
  go [] 1 lines

let load_rules file =
  match In_channel.with_open_text file In_channel.input_all with
  | contents -> parse_rules contents
  | exception Sys_error m -> Error ("unreadable rules file: " ^ m)

(* ----------------------------- matching ---------------------------- *)

let rule_matches r ~cohort finding =
  (match r.cohort with Some c -> String.equal c cohort | None -> true)
  && (match r.families with
     | [] -> true
     | fams -> List.mem (family_of_finding finding) fams)
  && (match (finding, r.min_share) with
     | Fleet_query.New_hot_path { share; _ }, Some m -> share >= m
     | _ -> true)
  &&
  match (finding, r.min_shift) with
  | Fleet_query.Edge_shift { from_bias; to_bias; _ }, Some m ->
      Float.abs (to_bias -. from_bias) >= m
  | _ -> true

(* ---------------------------- evaluation --------------------------- *)

type alert = {
  rule : string;
  cohort : string;
  window : int;
  streak : int;
  degraded : bool;
  finding : Fleet_query.finding;
}

type report = {
  alerts : alert list;
  considered : int;  (* matched finding-instances across all windows *)
  deduped : int;  (* suppressed: the finding had already fired *)
  flapped : int;  (* suppressed: streak broke before [persist] *)
  windows_evaluated : int;
  cohorts : string list;
}

let render_alert a =
  Fmt.str "ALERT rule=%s cohort=%s win=%d streak=%d%s %s" a.rule a.cohort
    a.window a.streak
    (if a.degraded then " degraded-data" else "")
    (Fleet_query.render_finding a.finding)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%a[fleet-watch] cohorts=%d windows=%d considered=%d \
              alerts=%d deduped=%d flapped=%d@]"
    (fun ppf alerts ->
      List.iter (fun a -> Fmt.pf ppf "%s@," (render_alert a)) alerts)
    r.alerts (List.length r.cohorts) r.windows_evaluated r.considered
    (List.length r.alerts) r.deduped r.flapped

(* Per-(rule, cohort, finding) streak state.  A finding's identity is
   its rendering — the same string triage and goldens use. *)
type streak_state = {
  mutable streak : int;
  mutable last_window : int;
  mutable fired : bool;
}

let run ?thresholds ?(baseline_windows = 1) ~rules ~degraded segments =
  let cohorts =
    List.sort_uniq compare
      (List.map
         (fun (s : Fleet_store.segment) ->
           s.Fleet_store.cohort.Fleet.Cohort.name)
         segments)
  in
  let degraded_set = Hashtbl.create 16 in
  List.iter
    (fun (cohort, window, _reason) ->
      Hashtbl.replace degraded_set (cohort, window) ())
    degraded;
  let is_degraded ~cohort ~lo ~baseline_hi w =
    Hashtbl.mem degraded_set (cohort, w)
    || List.exists
         (fun b -> Hashtbl.mem degraded_set (cohort, b))
         (List.init (max 0 (baseline_hi - lo + 1)) (fun i -> lo + i))
  in
  let states : (string * string * string, streak_state) Hashtbl.t =
    Hashtbl.create 64
  in
  let alerts = ref [] in
  let considered = ref 0 and deduped = ref 0 and flapped = ref 0 in
  let windows_evaluated = ref 0 in
  List.iter
    (fun cohort ->
      let mine =
        List.filter
          (fun (s : Fleet_store.segment) ->
            String.equal s.Fleet_store.cohort.Fleet.Cohort.name cohort)
          segments
      in
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (s : Fleet_store.segment) ->
            ( min lo s.Fleet_store.window.Fleet.Window.lo,
              max hi s.Fleet_store.window.Fleet.Window.hi ))
          (max_int, min_int) mine
      in
      let baseline_hi = lo + max 1 baseline_windows - 1 in
      if baseline_hi < hi then begin
        let baseline =
          Fleet_query.view
            (Fleet_query.select mine
               { Fleet_query.cohort = Some cohort;
                 lo = Some lo;
                 hi = Some baseline_hi })
        in
        for w = baseline_hi + 1 to hi do
          incr windows_evaluated;
          let current =
            Fleet_query.view
              (Fleet_query.select mine
                 { Fleet_query.cohort = Some cohort;
                   lo = Some w;
                   hi = Some w })
          in
          let findings =
            if current.Fleet_query.segments = 0 then []
            else Fleet_query.diff ?thresholds ~baseline ~current ()
          in
          List.iter
            (fun rule ->
              let matched =
                List.filter (rule_matches rule ~cohort) findings
              in
              considered := !considered + List.length matched;
              List.iter
                (fun f ->
                  let key =
                    (rule.name, cohort, Fleet_query.render_finding f)
                  in
                  let st =
                    match Hashtbl.find_opt states key with
                    | Some st -> st
                    | None ->
                        let st =
                          { streak = 0; last_window = min_int; fired = false }
                        in
                        Hashtbl.replace states key st;
                        st
                  in
                  st.streak <-
                    (if st.last_window = w - 1 then st.streak + 1 else 1);
                  st.last_window <- w;
                  if st.fired then incr deduped
                  else if st.streak >= rule.persist then begin
                    st.fired <- true;
                    alerts :=
                      {
                        rule = rule.name;
                        cohort;
                        window = w;
                        streak = st.streak;
                        degraded = is_degraded ~cohort ~lo ~baseline_hi w;
                        finding = f;
                      }
                      :: !alerts
                  end)
                matched)
            rules;
          (* streaks that broke this window without ever firing are
             flaps; they may restart later, from 1 *)
          Hashtbl.iter
            (fun (_, c, _) st ->
              if
                String.equal c cohort && st.last_window = w - 1
                && (not st.fired) && st.streak > 0
              then begin
                incr flapped;
                st.streak <- 0
              end)
            states
        done
      end)
    cohorts;
  {
    alerts =
      List.sort
        (fun a b ->
          compare
            (a.window, a.cohort, a.rule, Fleet_query.render_finding a.finding)
            (b.window, b.cohort, b.rule, Fleet_query.render_finding b.finding))
        !alerts;
    considered = !considered;
    deduped = !deduped;
    flapped = !flapped;
    windows_evaluated = !windows_evaluated;
    cohorts;
  }
