(** Time-windowed, digest-protected profile segments.

    The fleet's profile store: one compact binary file per segment
    (reusing {!Exp_codec.Bin} and {!Exp_store}'s directory discipline),
    each carrying per-window {e deltas} of the path / edge / DCG tables
    plus the method-name table — queries never rebuild a program.

    Lifecycle: the collector saves one raw segment per (instance,
    window); {!compact} folds each (cohort, window)'s raws into one
    merged segment ([origin = -1]) and deletes them; {!retain} trims
    the oldest windows.  File names are MD5s of the identity key;
    {!load_all} returns segments sorted by identity, so every store
    scan is deterministic. *)

type segment = {
  cohort : Fleet.Cohort.t;
  window : Fleet.Window.t;
  origin : int;  (** contributing instance ordinal; -1 once merged *)
  instances : int;  (** instances contributing to the rows *)
  samples : int;  (** PEP samples taken in the window *)
  methods : string array;  (** dense method index → name *)
  paths : (int * int * int) list;  (** method, path id, count *)
  edges : (int * int * int * int) list;
      (** method, branch, taken, not-taken *)
  dcg : (int * int * int) list;  (** caller (-1 = root), callee, weight *)
}

(** Canonical identity: cohort key + window key + origin. *)
val segment_key : segment -> string

(** [dir/<md5 of segment_key>.seg]. *)
val filename : dir:string -> segment -> string

(** Prepare the store directory ({!Exp_store.prepare_dir}: create,
    sweep temp files, probe writability). *)
val open_ : string -> (unit, Dcg.parse_error) result

(** Atomic digest-protected write under the segment's identity name. *)
val save : dir:string -> segment -> (unit, Dcg.parse_error) result

(** Decode one segment's bytes: magic, version, digest, shape and
    identity self-check all validated before anything is returned. *)
val decode : file:string -> string -> (segment, Dcg.parse_error) result

(** Every [*.seg] in [dir], sorted by identity key; unreadable,
    corrupt or future-versioned files come back as diagnostics. *)
val load_all : dir:string -> segment list * Dcg.parse_error list

(** Fold same-cohort segments into one ([origin = -1]): windows
    spanned, rows summed; instance counts are summed over raw inputs
    and maxed over merged ones.
    @raise Invalid_argument on an empty list or mixed cohorts. *)
val merge : segment list -> segment

(** Merge every (cohort, window)'s raw segments and delete them
    (windows that already have a merged segment keep it); returns
    (merged written, raws deleted, diagnostics). *)
val compact : dir:string -> int * int * Dcg.parse_error list

(** Delete segments older than the newest [max_windows] window indexes
    of their cohort; returns segments deleted. *)
val retain : dir:string -> max_windows:int -> int

(** Total size of the store's segment files, in bytes. *)
val store_bytes : dir:string -> int
