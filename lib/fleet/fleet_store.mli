(** Time-windowed, digest-protected profile segments.

    The fleet's profile store: one compact binary file per segment
    (reusing {!Exp_codec.Bin} and {!Exp_store}'s directory discipline),
    each carrying per-window {e deltas} of the path / edge / DCG tables
    plus the method-name table — queries never rebuild a program.

    Lifecycle: the collector saves one raw segment per (instance,
    window); {!compact} folds each (cohort, window)'s raws into one
    merged segment ([origin = -1]) and deletes them; {!retain} trims
    the oldest windows.  File names are MD5s of the identity key;
    {!load_all} returns segments sorted by identity, so every store
    scan is deterministic. *)

type segment = {
  cohort : Fleet.Cohort.t;
  window : Fleet.Window.t;
  origin : int;  (** contributing instance ordinal; -1 once merged *)
  instances : int;  (** instances contributing to the rows *)
  samples : int;  (** PEP samples taken in the window *)
  methods : string array;  (** dense method index → name *)
  paths : (int * int * int) list;  (** method, path id, count *)
  edges : (int * int * int * int) list;
      (** method, branch, taken, not-taken *)
  dcg : (int * int * int) list;  (** caller (-1 = root), callee, weight *)
}

(** Canonical identity: cohort key + window key + origin. *)
val segment_key : segment -> string

(** [dir/<md5 of segment_key>.seg]. *)
val filename : dir:string -> segment -> string

(** What the recovery scan on {!open_} found and fixed: [healed] files
    were journal intents without commits whose bytes failed decode
    (torn writes, removed); [late_commits] were decode-valid files that
    merely missed their commit record (crash between rename and
    journal append, kept). *)
type recovery = { healed : int; late_commits : int }

val no_recovery : recovery

(** Prepare the store directory ({!Exp_store.prepare_dir}: create,
    sweep stale temp files, probe writability — mkdir and IO failures
    come back as structured diagnostics) and run the write-ahead
    journal recovery scan: crash debris is removed, resolved journal
    entries are dropped.  After [open_] every [*.seg] present was
    written to completion. *)
val open_ : string -> (recovery, Dcg.parse_error) result

(** Journaled, digest-protected write under the segment's identity
    name: intent record, atomic tmp + rename, commit record.  A run
    killed at any byte offset leaves either no file, a torn file the
    next {!open_} removes, or the complete segment — never a silently
    short one.  [inject] deterministically damages the write for chaos
    runs: [`Torn draw] leaves a strict prefix under the final name
    with no commit record (the simulated kill), [`Flip draw] completes
    the write with one byte flipped (silent corruption only the digest
    check can see). *)
val save :
  ?inject:[ `Torn of int | `Flip of int ] ->
  dir:string ->
  segment ->
  (unit, Dcg.parse_error) result

(** Rename a damaged segment to [<file>.quarantined]: evidence kept,
    store no longer poisoned, identity name free for re-collection. *)
val quarantine : string -> (unit, Dcg.parse_error) result

(** Append to the degraded-data sidecar ([degraded.log]): [window] of
    [cohort] was rebuilt from quarantine or lost outright.  Provenance
    lives beside the segments, never inside them — a healed store must
    stay byte-identical to a never-damaged one. *)
val note_degraded :
  dir:string ->
  cohort:string ->
  window:int ->
  reason:string ->
  (unit, Dcg.parse_error) result

(** All degraded-data records, deduplicated and sorted:
    [(cohort name, window index, reason)]. *)
val load_degraded : dir:string -> (string * int * string) list

(** Decode one segment's bytes: magic, version, digest, shape and
    identity self-check all validated before anything is returned. *)
val decode : file:string -> string -> (segment, Dcg.parse_error) result

(** Every [*.seg] in [dir], sorted by identity key; unreadable,
    corrupt or future-versioned files come back as diagnostics. *)
val load_all : dir:string -> segment list * Dcg.parse_error list

(** Fold same-cohort segments into one ([origin = -1]): windows
    spanned, rows summed; instance counts are summed over raw inputs
    and maxed over merged ones.
    @raise Invalid_argument on an empty list or mixed cohorts. *)
val merge : segment list -> segment

(** Merge every (cohort, window)'s raw segments and delete them.  A
    pre-existing merged segment survives only while it covers more
    instances than the fresh raws; otherwise it is rebuilt from them —
    so a degraded window heals as soon as a full re-collection lands.
    Returns (merged written, raws deleted, diagnostics). *)
val compact : dir:string -> int * int * Dcg.parse_error list

(** Delete segments older than the newest [max_windows] window indexes
    of their cohort; returns segments deleted. *)
val retain : dir:string -> max_windows:int -> int

(** Total size of the store's segment files, in bytes. *)
val store_bytes : dir:string -> int
