(** Standing alert watch over the fleet's segment store.

    {!Fleet_query.diff} answers "what changed between these two window
    ranges" once; the watch asks it continuously.  For each cohort the
    first [baseline_windows] windows form a fixed baseline aggregate;
    every later window is diffed against it and the resulting findings
    are screened by a persisted rule set.  Three mechanisms keep the
    alert stream operable:

    - {e hysteresis}: a finding must recur for [persist] consecutive
      windows before its rule fires;
    - {e dedup}: once fired, a finding never fires again while it
      persists — alerts carry state {e changes}, not state;
    - {e degraded-data annotation}: alerts whose evidence window (or
      baseline) was rebuilt from quarantine or lost outright are
      flagged, so weaker evidence is visible.

    {!run} is a pure function of (segments, rules, degraded log) and
    returns alerts in a deterministic order. *)

type family = New_hot_path | Edge_shift | Caller_change

val family_name : family -> string
val family_of_name : string -> family option
val family_of_finding : Fleet_query.finding -> family

type rule = {
  name : string;
  cohort : string option;  (** [None] = every cohort *)
  families : family list;  (** [[]] = every finding family *)
  persist : int;  (** consecutive windows required before firing, >= 1 *)
  min_share : float option;  (** extra floor on new-hot-path share *)
  min_shift : float option;  (** extra floor on |edge bias delta| *)
}

(** One catch-all rule named ["drift"] (all cohorts, all families). *)
val default_rules : ?persist:int -> unit -> rule list

(** Render a rule in the line grammar {!parse_rule} accepts
    (round-trips). *)
val rule_to_line : rule -> string

(** Parse one rule line:
    [NAME \[cohort=C\] \[family=F1,F2\] \[persist=N\] \[min-share=X\]
    \[min-shift=X\]].  Families are [new-hot-path], [edge-shift],
    [caller-change]. *)
val parse_rule : string -> (rule, string) result

(** Parse a rules file body: one rule per line, [#] comments and blank
    lines ignored. *)
val parse_rules : string -> (rule list, string) result

val load_rules : string -> (rule list, string) result

(** Does [finding] (seen in [cohort]) pass [rule]'s cohort, family and
    magnitude filters? *)
val rule_matches : rule -> cohort:string -> Fleet_query.finding -> bool

type alert = {
  rule : string;
  cohort : string;
  window : int;  (** window index at which the rule fired *)
  streak : int;  (** consecutive windows the finding had held *)
  degraded : bool;  (** evidence or baseline window was degraded *)
  finding : Fleet_query.finding;
}

type report = {
  alerts : alert list;  (** sorted by (window, cohort, rule, finding) *)
  considered : int;  (** rule-matched finding instances examined *)
  deduped : int;  (** suppressed because the finding already fired *)
  flapped : int;  (** streaks that broke before reaching [persist] *)
  windows_evaluated : int;
  cohorts : string list;
}

(** [ALERT rule=.. cohort=.. win=.. streak=..\[ degraded-data\]
    <finding>]. *)
val render_alert : alert -> string

val pp_report : Format.formatter -> report -> unit

(** Evaluate [rules] over [segments].  [degraded] is
    {!Fleet_store.load_degraded} output; [thresholds] feeds
    {!Fleet_query.diff}; [baseline_windows] (default 1) widens the
    per-cohort baseline aggregate. *)
val run :
  ?thresholds:Fleet_query.thresholds ->
  ?baseline_windows:int ->
  rules:rule list ->
  degraded:(string * int * string) list ->
  Fleet_store.segment list ->
  report
