(* Query layer over the segment store: hotspots, folded export, and
   cross-window / cross-cohort diffs with rule-based triage.

   Everything here is a pure function of the selected segments, and
   every rendering sorts before printing — query output is as
   deterministic as the store it reads. *)

type filter = { cohort : string option; lo : int option; hi : int option }

let any = { cohort = None; lo = None; hi = None }

let in_range filter (s : Fleet_store.segment) =
  let w = s.Fleet_store.window in
  (match filter.lo with Some lo -> w.Fleet.Window.hi >= lo | None -> true)
  && (match filter.hi with Some hi -> w.Fleet.Window.lo <= hi | None -> true)
  &&
  match filter.cohort with
  | Some name -> String.equal s.Fleet_store.cohort.Fleet.Cohort.name name
  | None -> true

(* Merged segments supersede the raws they were folded from: a raw
   whose window falls inside a same-cohort merged segment is shadowed
   (compaction normally deletes it, but [--keep-raw] stores and
   mid-compaction crashes keep both). *)
let select segments filter =
  let picked = List.filter (in_range filter) segments in
  let merged =
    List.filter (fun (s : Fleet_store.segment) -> s.Fleet_store.origin < 0)
      picked
  in
  let shadowed (s : Fleet_store.segment) =
    s.Fleet_store.origin >= 0
    && List.exists
         (fun (m : Fleet_store.segment) ->
           Fleet.Cohort.equal m.Fleet_store.cohort s.Fleet_store.cohort
           && m.Fleet_store.window.Fleet.Window.lo
              <= s.Fleet_store.window.Fleet.Window.lo
           && s.Fleet_store.window.Fleet.Window.hi
              <= m.Fleet_store.window.Fleet.Window.hi)
         merged
  in
  List.filter (fun s -> not (shadowed s)) picked

(* ------------------------- aggregation ---------------------------- *)

(* One aggregated view over a segment list, rows keyed by method NAME
   (segments may carry different dense index tables). *)
type view = {
  methods : string array;
  paths : (int * int * int) list;  (* method idx, path id, count *)
  edges : (int * int * int * int) list;
  dcg : (int * int * int) list;  (* caller idx (-1 root), callee idx *)
  samples : int;
  segments : int;
  span : Fleet.Window.t option;
}

let view segments =
  let names = Hashtbl.create 64 in
  let order = ref [] in
  let intern name =
    match Hashtbl.find_opt names name with
    | Some i -> i
    | None ->
        let i = Hashtbl.length names in
        Hashtbl.add names name i;
        order := name :: !order;
        i
  in
  let paths = Hashtbl.create 256 in
  let edges = Hashtbl.create 256 in
  let dcg = Hashtbl.create 64 in
  let samples = ref 0 in
  let span = ref None in
  List.iter
    (fun (s : Fleet_store.segment) ->
      let m i =
        if i >= 0 && i < Array.length s.Fleet_store.methods then
          intern s.Fleet_store.methods.(i)
        else intern (Fmt.str "m#%d" i)
      in
      List.iter
        (fun (mi, pid, c) ->
          let k = (m mi, pid) in
          Hashtbl.replace paths k
            (c + Option.value ~default:0 (Hashtbl.find_opt paths k)))
        s.Fleet_store.paths;
      List.iter
        (fun (mi, br, tk, nt) ->
          let k = (m mi, br) in
          let ptk, pnt =
            Option.value ~default:(0, 0) (Hashtbl.find_opt edges k)
          in
          Hashtbl.replace edges k (ptk + tk, pnt + nt))
        s.Fleet_store.edges;
      List.iter
        (fun (caller, callee, w) ->
          let k = ((if caller < 0 then -1 else m caller), m callee) in
          Hashtbl.replace dcg k
            (w + Option.value ~default:0 (Hashtbl.find_opt dcg k)))
        s.Fleet_store.dcg;
      samples := !samples + s.Fleet_store.samples;
      span :=
        Some
          (match !span with
          | None -> s.Fleet_store.window
          | Some w -> Fleet.Window.span w s.Fleet_store.window))
    segments;
  {
    methods = Array.of_list (List.rev !order);
    paths =
      List.sort compare
        (Hashtbl.fold (fun (mi, p) c acc -> (mi, p, c) :: acc) paths []);
    edges =
      List.sort compare
        (Hashtbl.fold
           (fun (mi, b) (tk, nt) acc -> (mi, b, tk, nt) :: acc)
           edges []);
    dcg =
      List.sort compare
        (Hashtbl.fold (fun (c, e) w acc -> (c, e, w) :: acc) dcg []);
    samples = !samples;
    segments = List.length segments;
    span = !span;
  }

let name_of v i =
  if i >= 0 && i < Array.length v.methods then v.methods.(i)
  else Fmt.str "m#%d" i

(* ------------------------- hotspots ------------------------------- *)

type kind = Profile_export.kind

(* HotspotScorer-style exponential decay: a count in window [w] scores
   [count * decay^(latest - w)], so recent windows dominate but a
   sustained hotspot still outranks a one-window spike. *)
let top ?(decay = 0.75) ~n kind segments =
  let latest =
    List.fold_left
      (fun acc (s : Fleet_store.segment) ->
        max acc s.Fleet_store.window.Fleet.Window.hi)
      0 segments
  in
  let scores = Hashtbl.create 256 in
  let bump label x =
    Hashtbl.replace scores label
      (x +. Option.value ~default:0. (Hashtbl.find_opt scores label))
  in
  List.iter
    (fun (s : Fleet_store.segment) ->
      let m i =
        if i >= 0 && i < Array.length s.Fleet_store.methods then
          s.Fleet_store.methods.(i)
        else Fmt.str "m#%d" i
      in
      let w =
        decay ** float_of_int (latest - s.Fleet_store.window.Fleet.Window.hi)
      in
      match kind with
      | `Paths ->
          List.iter
            (fun (mi, pid, c) ->
              bump (Fmt.str "%s/path#%d" (m mi) pid) (w *. float_of_int c))
            s.Fleet_store.paths
      | `Edges ->
          List.iter
            (fun (mi, br, tk, nt) ->
              bump
                (Fmt.str "%s/br#%d" (m mi) br)
                (w *. float_of_int (tk + nt)))
            s.Fleet_store.edges
      | `Dcg ->
          List.iter
            (fun (caller, callee, wt) ->
              let c = if caller < 0 then "<root>" else m caller in
              bump
                (Fmt.str "%s->%s" c (m callee))
                (w *. float_of_int wt))
            s.Fleet_store.dcg)
    segments;
  let all = Hashtbl.fold (fun l s acc -> (l, s) :: acc) scores [] in
  let ordered =
    List.sort
      (fun (l1, s1) (l2, s2) ->
        match compare s2 s1 with 0 -> compare l1 l2 | c -> c)
      all
  in
  List.filteri (fun i _ -> i < n) ordered

(* ----------------------- folded export ---------------------------- *)

(* Rebuild profile tables from a view and hand them to the shared
   exporter, so fleet flamegraphs use the exact frame vocabulary of
   [pepsim top]. *)
let folded kind v =
  let n_methods = Array.length v.methods in
  let dcg = Dcg.create () in
  List.iter
    (fun (caller, callee, w) ->
      ignore (Dcg.parse_line dcg (Fmt.str "%d %d %d" caller callee w)))
    v.dcg;
  let name = name_of v in
  match kind with
  | `Paths ->
      let t = Path_profile.create_table ~n_methods in
      List.iter
        (fun (mi, pid, c) -> if mi < n_methods then Path_profile.add t.(mi) pid c)
        v.paths;
      Profile_export.paths_of ~name dcg t
  | `Edges ->
      let t = Edge_profile.create_table ~n_methods in
      List.iter
        (fun (mi, br, tk, nt) ->
          if mi < n_methods then begin
            Edge_profile.add t.(mi) br ~taken:true tk;
            Edge_profile.add t.(mi) br ~taken:false nt
          end)
        v.edges;
      Profile_export.edges_of ~name dcg t
  | `Dcg -> Profile_export.dcg_of ~name dcg

(* --------------------------- triage ------------------------------- *)

type thresholds = {
  new_share : float;  (* path share making an unseen path "hot" *)
  edge_shift : float;  (* bias delta flagging an edge-flow shift *)
  min_edge : int;  (* arm traffic below this is noise *)
  min_dcg : int;  (* callee weight below this is noise *)
}

let default_thresholds =
  { new_share = 0.01; edge_shift = 0.25; min_edge = 20; min_dcg = 10 }

type finding =
  | New_hot_path of { meth : string; path_id : int; share : float }
  | Edge_shift of {
      meth : string;
      branch : int;
      from_bias : float;
      to_bias : float;
    }
  | Caller_change of {
      callee : string;
      from_caller : string;
      to_caller : string;
    }

let render_finding = function
  | New_hot_path { meth; path_id; share } ->
      Fmt.str "new-hot-path %s/path#%d share=%.1f%%" meth path_id
        (100. *. share)
  | Edge_shift { meth; branch; from_bias; to_bias } ->
      Fmt.str "edge-shift %s/br#%d bias %.2f -> %.2f" meth branch from_bias
        to_bias
  | Caller_change { callee; from_caller; to_caller } ->
      Fmt.str "caller-change %s: %s -> %s" callee from_caller to_caller

(* Rule-based triage of current vs baseline.  All joins are by method
   name; findings come back sorted by their rendering, so golden tests
   and the CLI agree byte-for-byte. *)
let diff ?(thresholds = default_thresholds) ~baseline ~current () =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  (* new hot paths: present now with a non-trivial share of all path
     executions, never recorded in the baseline *)
  let base_paths = Hashtbl.create 256 in
  List.iter
    (fun (mi, pid, c) ->
      Hashtbl.replace base_paths (name_of baseline mi, pid) c)
    baseline.paths;
  let cur_total =
    List.fold_left (fun acc (_, _, c) -> acc + c) 0 current.paths
  in
  if cur_total > 0 then
    List.iter
      (fun (mi, pid, c) ->
        let meth = name_of current mi in
        let share = float_of_int c /. float_of_int cur_total in
        if
          share >= thresholds.new_share
          && not (Hashtbl.mem base_paths (meth, pid))
        then emit (New_hot_path { meth; path_id = pid; share }))
      current.paths;
  (* edge-flow shifts: the same branch, enough traffic on both sides,
     taken-bias moved by at least [edge_shift] *)
  let base_edges = Hashtbl.create 256 in
  List.iter
    (fun (mi, br, tk, nt) ->
      Hashtbl.replace base_edges (name_of baseline mi, br) (tk, nt))
    baseline.edges;
  List.iter
    (fun (mi, br, tk, nt) ->
      let meth = name_of current mi in
      match Hashtbl.find_opt base_edges (meth, br) with
      | Some (btk, bnt)
        when btk + bnt >= thresholds.min_edge
             && tk + nt >= thresholds.min_edge ->
          let from_bias =
            float_of_int btk /. float_of_int (btk + bnt)
          in
          let to_bias = float_of_int tk /. float_of_int (tk + nt) in
          if Float.abs (to_bias -. from_bias) >= thresholds.edge_shift then
            emit (Edge_shift { meth; branch = br; from_bias; to_bias })
      | _ -> ())
    current.edges;
  (* caller changes: a callee sampled on both sides whose dominant
     caller moved (weight ties break toward the lexically smaller
     caller, so the pick is deterministic) *)
  let dominant v =
    let best = Hashtbl.create 16 in
    let total = Hashtbl.create 16 in
    List.iter
      (fun (caller, callee, w) ->
        let callee = name_of v callee in
        let caller = if caller < 0 then "<root>" else name_of v caller in
        Hashtbl.replace total callee
          (w + Option.value ~default:0 (Hashtbl.find_opt total callee));
        match Hashtbl.find_opt best callee with
        | Some (bc, bw) when w > bw || (w = bw && caller < bc) ->
            Hashtbl.replace best callee (caller, w)
        | Some _ -> ()
        | None -> Hashtbl.add best callee (caller, w))
      v.dcg;
    (best, total)
  in
  let base_dom, base_tot = dominant baseline in
  let cur_dom, cur_tot = dominant current in
  Hashtbl.iter
    (fun callee (to_caller, _) ->
      match Hashtbl.find_opt base_dom callee with
      | Some (from_caller, _)
        when Option.value ~default:0 (Hashtbl.find_opt base_tot callee)
             >= thresholds.min_dcg
             && Option.value ~default:0 (Hashtbl.find_opt cur_tot callee)
                >= thresholds.min_dcg
             && not (String.equal from_caller to_caller) ->
          emit (Caller_change { callee; from_caller; to_caller })
      | _ -> ())
    cur_dom;
  List.sort_uniq
    (fun a b -> compare (render_finding a) (render_finding b))
    !findings
