(* Fleet-level chaos: run the collector under each curated fleet fault
   plan and check the recovery-convergence invariants against a healthy
   run of the same spec.

   The tentpole claim is byte-level: a run that crashed, tore writes,
   straggled or quarantined segments must end (or, for data-losing
   plans, heal on one clean rerun) with exactly the segment files a
   never-faulted run produces.  So the oracle here is a store
   fingerprint — sorted (file name, md5) pairs — not any summary
   statistic. *)

type report = {
  flabel : string;
  converges : bool;
  identical : bool;  (* faulted store == healthy store, byte-for-byte *)
  counts : Fault_injector.counts option;
  healed_open : int;
  lost : int;  (* degraded.log "lost" records after the faulted run *)
  rebuilt : int;  (* degraded.log "rebuilt" records *)
  violations : string list;
}

(* Sorted (basename, md5) of every completed segment: the identity the
   convergence invariants compare.  Quarantined evidence files and the
   degraded sidecar are provenance, not store content. *)
let fingerprint dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      List.sort compare
        (List.filter_map
           (fun n ->
             if Filename.check_suffix n ".seg" then
               Some (n, Digest.to_hex (Digest.file (Filename.concat dir n)))
             else None)
           (Array.to_list names))

let zero_fleet (c : Fault_injector.counts) =
  c.Fault_injector.instance_crash = 0
  && c.Fault_injector.torn_write = 0
  && c.Fault_injector.straggler = 0
  && c.Fault_injector.seg_corrupt = 0
  && c.Fault_injector.restarts = 0
  && c.Fault_injector.lost_instances = 0
  && c.Fault_injector.writes_recovered = 0
  && c.Fault_injector.catchups = 0
  && c.Fault_injector.seg_quarantined = 0

let fleet_fired (c : Fault_injector.counts) =
  c.Fault_injector.instance_crash + c.Fault_injector.torn_write
  + c.Fault_injector.straggler + c.Fault_injector.seg_corrupt
  > 0

let run_one ?jobs ~healthy_fp ~dir spec (c : Exp_chaos.fleet_case) =
  let cdir = Filename.concat dir c.Exp_chaos.flabel in
  let faulted = { spec with Fleet_collector.faults = c.Exp_chaos.fplan } in
  let base =
    {
      flabel = c.Exp_chaos.flabel;
      converges = c.Exp_chaos.converges;
      identical = false;
      counts = None;
      healed_open = 0;
      lost = 0;
      rebuilt = 0;
      violations = [];
    }
  in
  match Fleet_collector.run ?jobs ~dir:cdir faulted with
  | exception exn ->
      { base with violations = [ "crashed: " ^ Printexc.to_string exn ] }
  | Error e ->
      { base with violations = [ Fmt.str "run: %a" Dcg.pp_parse_error e ] }
  | Ok r ->
      let violations = ref [] in
      let note fmt = Fmt.kstr (fun s -> violations := !violations @ [ s ]) fmt in
      List.iter
        (fun e -> note "diagnostic: %a" Dcg.pp_parse_error e)
        r.Fleet_collector.diags;
      let fp = fingerprint cdir in
      let identical = fp = healthy_fp in
      let lost, rebuilt =
        List.fold_left
          (fun (l, b) (_, _, reason) ->
            if reason = "lost" then (l + 1, b) else (l, b + 1))
          (0, 0) r.Fleet_collector.degraded
      in
      (match r.Fleet_collector.counts with
      | Some counts -> (
          (match Fault_injector.accounted counts with
          | Ok () -> ()
          | Error m -> note "unaccounted degradation: %s" m);
          let perturbs =
            Fault_plan.perturbs_fleet c.Exp_chaos.fplan
          in
          if perturbs && not (fleet_fired counts) then
            note "plan %s never fired" (Fault_plan.key c.Exp_chaos.fplan);
          if (not perturbs) && not (zero_fleet counts) then
            note "non-perturbing plan recorded fleet faults")
      | None ->
          if not (Fault_plan.is_empty c.Exp_chaos.fplan) then
            note "active plan produced no fault accounting");
      if c.Exp_chaos.converges then begin
        if not identical then
          note "store diverged from the healthy run (%d vs %d segments)"
            (List.length fp) (List.length healthy_fp);
        if lost > 0 then note "converging plan lost %d windows" lost
      end
      else begin
        if identical then note "data-losing plan left the store untouched";
        if lost = 0 then note "data-losing plan recorded no lost windows"
      end;
      (* Recovery convergence, universally: one clean rerun over the
         same store must land exactly the healthy bytes — a no-op for
         stores that already converged, a full re-collection for lost
         windows. *)
      (match
         Fleet_collector.run ?jobs ~dir:cdir
           { spec with Fleet_collector.faults = Fault_plan.empty }
       with
      | exception exn ->
          note "heal rerun crashed: %s" (Printexc.to_string exn)
      | Error e -> note "heal rerun: %a" Dcg.pp_parse_error e
      | Ok r2 ->
          if fingerprint cdir <> healthy_fp then
            note "clean rerun did not converge to the healthy store";
          if identical && r2.Fleet_collector.simulated <> 0 then
            note "converged store still re-simulated %d instances"
              r2.Fleet_collector.simulated);
      {
        base with
        identical;
        counts = r.Fleet_collector.counts;
        healed_open = r.Fleet_collector.healed_open;
        lost;
        rebuilt;
        violations = !violations;
      }

let sweep ?jobs ?(cases = Exp_chaos.fleet_curated) ~dir spec =
  let hdir = Filename.concat dir "healthy" in
  match
    Fleet_collector.run ?jobs ~dir:hdir
      { spec with Fleet_collector.faults = Fault_plan.empty }
  with
  | Error e ->
      [
        {
          flabel = "healthy";
          converges = true;
          identical = false;
          counts = None;
          healed_open = 0;
          lost = 0;
          rebuilt = 0;
          violations = [ Fmt.str "healthy run: %a" Dcg.pp_parse_error e ];
        };
      ]
  | Ok _ ->
      let healthy_fp = fingerprint hdir in
      List.map (run_one ?jobs ~healthy_fp ~dir spec) cases

let passed reports = List.for_all (fun r -> r.violations = []) reports

let pp_report ppf r =
  let c =
    Option.value r.counts
      ~default:
        {
          Fault_injector.compile_fail = 0;
          sample_overrun = 0;
          store_corrupt = 0;
          backoffs = 0;
          gaveups = 0;
          samples_dropped = 0;
          path_overflow = 0;
          edge_overflow = 0;
          quarantined = 0;
          instance_crash = 0;
          torn_write = 0;
          straggler = 0;
          seg_corrupt = 0;
          restarts = 0;
          lost_instances = 0;
          writes_recovered = 0;
          catchups = 0;
          seg_quarantined = 0;
        }
  in
  Fmt.pf ppf
    "@[<v>%-16s %s %-9s crash/torn/strag/rot=%d/%d/%d/%d \
     restart/lostinst/recov/catch/quar=%d/%d/%d/%d/%d lost=%d rebuilt=%d"
    r.flabel
    (if r.violations = [] then "ok  " else "FAIL")
    (if r.identical then "identical"
     else if r.converges then "DIVERGED"
     else "degraded")
    c.Fault_injector.instance_crash c.Fault_injector.torn_write
    c.Fault_injector.straggler c.Fault_injector.seg_corrupt
    c.Fault_injector.restarts c.Fault_injector.lost_instances
    c.Fault_injector.writes_recovered c.Fault_injector.catchups
    c.Fault_injector.seg_quarantined r.lost r.rebuilt;
  List.iter (fun v -> Fmt.pf ppf "@,    !! %s" v) r.violations;
  Fmt.pf ppf "@]"
