(* The continuous-profiling collector.

   Drives N simulated VM instances per cohort through W collection
   windows of one application iteration each, snapshotting the
   per-window delta of every profile table into the segment store.

   Determinism contract (the fleet inherits Exp_pool's): instances
   shard across domains with [Exp_pool.map], which returns results in
   input order; each instance is a pure function of its
   [Fleet.Instance_id] (seeded PRNG, virtual time, replay advice), and
   all store writes happen on the main domain after the join — so a
   run at [--jobs 4] is byte-identical to [--jobs 1], and a rerun with
   the same seeds is byte-identical to the first.

   Two deliberate choices:

   - Replay mode.  Instances compile per advice at first invocation
     and never re-instrument, so the cumulative PEP tables are
     monotone and per-window deltas are exact (an adaptive recompile
     would clear the method's path slot mid-stream).  The advice comes
     from a per-cohort two-iteration adaptive warmup, phase 0.

   - Compressed timer.  One application iteration is a window; at the
     default tick period a small iteration sees too few ticks to
     promote (and hence PEP-instrument) the minority methods drift
     detection depends on.  The collector divides the tick period by
     [tick_shrink] (default 8) for warmup and collection alike —
     virtual time stays exact, there are just more samples per cycle,
     which is precisely what a continuous profiler wants from a short
     window. *)

type spec = {
  workload : Workload.t;
  size : int option;
  seed : int;
  samples : int;
  stride : int;
  cohorts : (string * Fleet.Drift.t) list;
  instances : int;
  windows : int;
  tick_shrink : int;
  keep_raw : bool;
  retain_windows : int option;
}

let default_cohorts ~windows =
  [
    ("steady", Fleet.Drift.No_drift);
    ("shift", Fleet.Drift.Phase_shift { at_window = windows / 2; phase = 1 });
  ]

let default_spec ?size ?(seed = 42) ?(samples = 64) ?(stride = 17)
    ?(instances = 8) ?(windows = 4) ?(tick_shrink = 8) ?(keep_raw = false)
    ?retain_windows ?cohorts workload =
  {
    workload;
    size;
    seed;
    samples;
    stride;
    cohorts =
      (match cohorts with Some c -> c | None -> default_cohorts ~windows);
    instances;
    windows;
    tick_shrink;
    keep_raw;
    retain_windows;
  }

type report = {
  cohorts : int;
  instances : int;
  windows : int;
  simulated : int;  (* instances executed this run *)
  skipped : int;  (* instances already covered by stored segments *)
  snapshots : int;  (* raw snapshots written *)
  samples_taken : int;  (* PEP samples across new snapshots *)
  merged : int;  (* merged segments written by compaction *)
  retained_deleted : int;  (* segments dropped by retention *)
  store_bytes : int;
  diags : Dcg.parse_error list;
}

let size_of spec = Option.value ~default:spec.workload.Workload.default_size spec.size

let cost_of spec =
  {
    Cost_model.default with
    Cost_model.tick_period =
      max 1 (Cost_model.default.Cost_model.tick_period / max 1 spec.tick_shrink);
  }

let sampling_of spec = Sampling.pep ~samples:spec.samples ~stride:spec.stride

(* The fleet's run configuration, identified the same way the run
   cache identifies it. *)
let config_key spec =
  Exp_harness.config_key
    {
      Exp_harness.default with
      Exp_harness.profiling =
        Exp_harness.Pep_profiled
          { sampling = sampling_of spec; zero = `Hottest; numbering = `Smart };
    }

let cohort_of spec (name, drift) =
  {
    Fleet.Cohort.name;
    workload = spec.workload.Workload.name;
    size = size_of spec;
    seed = spec.seed;
    config_key = config_key spec;
    drift;
  }

(* Per-cohort warmup: Exp_harness.make_env with the compressed timer —
   adaptive two-iteration run in phase 0, advice captured.  Shared
   across cohorts (steady and shift run the same program and seed; the
   drift only applies to collection windows). *)
let warmup_env spec =
  let program = Workload.program ~size:(size_of spec) spec.workload in
  Verify.program program;
  let st = Machine.create ~cost:(cost_of spec) ~seed:spec.seed program in
  let driver =
    Driver.create
      {
        Driver.default_options with
        Driver.mode =
          Driver.Adaptive { thresholds = Driver.default_thresholds };
      }
      st
  in
  ignore (Driver.run driver);
  ignore (Driver.run driver);
  (program, Driver.advice driver)

(* ------------------------ one instance's run ----------------------- *)

(* Cursors over the cumulative tables, so each window snapshots its
   delta.  All three tables are monotone in replay mode; [max 0] is
   belt and braces. *)
type cursors = {
  c_paths : (int * int, int) Hashtbl.t;
  c_edges : (int * int, int * int) Hashtbl.t;
  c_dcg : (int * int, int) Hashtbl.t;
  mutable c_samples : int;
}

let delta3 tbl rows =
  List.filter_map
    (fun (a, b, c) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl (a, b)) in
      Hashtbl.replace tbl (a, b) c;
      if c - prev > 0 then Some (a, b, c - prev) else None)
    rows

let delta4 tbl rows =
  List.filter_map
    (fun (a, b, c, d) ->
      let pc, pd = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl (a, b)) in
      Hashtbl.replace tbl (a, b) (c, d);
      let dc = max 0 (c - pc) and dd = max 0 (d - pd) in
      if dc > 0 || dd > 0 then Some (a, b, dc, dd) else None)
    rows

let cumulative_paths (pep : Pep.t) =
  let rows = ref [] in
  Array.iteri
    (fun mi prof ->
      Path_profile.iter
        (fun (e : Path_profile.entry) ->
          if e.Path_profile.count > 0 then
            rows := (mi, e.Path_profile.path_id, e.Path_profile.count) :: !rows)
        prof)
    pep.Pep.paths;
  List.sort compare !rows

let cumulative_edges (pep : Pep.t) =
  let rows = ref [] in
  Array.iteri
    (fun mi prof ->
      List.iter
        (fun (br, (tk, nt)) -> rows := (mi, br, tk, nt) :: !rows)
        (Edge_profile.entries prof))
    pep.Pep.edges;
  List.sort compare !rows

let cumulative_dcg dcg = List.sort compare (Dcg.edges dcg)

(* Run one instance through every window, returning its raw segments
   (worker-domain safe: touches only its own machine and tables). *)
let run_instance spec ~program ~advice instance =
  let cohort = instance.Fleet.Instance_id.cohort in
  let st =
    Machine.create ~cost:(cost_of spec)
      ~seed:(Fleet.Instance_id.seed instance)
      program
  in
  let driver =
    Driver.create
      {
        Driver.default_options with
        Driver.mode = Driver.Replay advice;
        pep =
          Some
            { Driver.sampling = sampling_of spec;
              zero = `Hottest;
              numbering = `Smart };
        verify = false;
      }
      st
  in
  let pep = Option.get (Driver.pep driver) in
  let methods =
    Array.map (fun cm -> cm.Machine.meth.Method.name) st.Machine.methods
  in
  let cursors =
    {
      c_paths = Hashtbl.create 256;
      c_edges = Hashtbl.create 256;
      c_dcg = Hashtbl.create 64;
      c_samples = 0;
    }
  in
  List.init spec.windows (fun w ->
      (* the drift plan is applied between windows, like a deploy or
         traffic shift landing in production *)
      let phase = Fleet.Drift.phase cohort.Fleet.Cohort.drift ~window:w in
      if Array.length st.Machine.globals > Phased.phase_global then
        st.Machine.globals.(Phased.phase_global) <- phase;
      let start_cycle = st.Machine.cycles in
      ignore (Driver.run driver);
      let end_cycle = st.Machine.cycles in
      let paths = delta3 cursors.c_paths (cumulative_paths pep) in
      let edges = delta4 cursors.c_edges (cumulative_edges pep) in
      let dcg = delta3 cursors.c_dcg (cumulative_dcg (Driver.dcg driver)) in
      let total_samples = Pep.n_samples pep in
      let samples = max 0 (total_samples - cursors.c_samples) in
      cursors.c_samples <- total_samples;
      {
        Fleet_store.cohort;
        window = Fleet.Window.raw ~index:w ~start_cycle ~end_cycle;
        origin = instance.Fleet.Instance_id.ordinal;
        instances = 1;
        samples;
        methods;
        paths;
        edges;
        dcg;
      })

(* --------------------------- the fleet run ------------------------- *)

(* A cohort is warm when every window 0..W-1 already has a merged
   segment with the full instance count — then this run simulates
   nothing for it (the CI smoke asserts simulated=0 on a re-run). *)
let covered ~existing (spec : spec) cohort =
  let windows =
    List.filter_map
      (fun (s : Fleet_store.segment) ->
        if
          s.Fleet_store.origin < 0
          && Fleet.Cohort.equal s.Fleet_store.cohort cohort
          && s.Fleet_store.instances = spec.instances
          && s.Fleet_store.window.Fleet.Window.lo
             = s.Fleet_store.window.Fleet.Window.hi
        then Some s.Fleet_store.window.Fleet.Window.lo
        else None)
      existing
  in
  List.for_all (fun w -> List.mem w windows)
    (List.init spec.windows (fun w -> w))

let run ?(jobs = 1) ~dir spec =
  match Fleet_store.open_ dir with
  | Error e -> Error e
  | Ok () ->
      let existing, diags0 = Fleet_store.load_all ~dir in
      let program, advice = warmup_env spec in
      let cohorts = List.map (cohort_of spec) spec.cohorts in
      let cold =
        List.filter (fun c -> not (covered ~existing spec c)) cohorts
      in
      let skipped =
        (List.length cohorts - List.length cold) * spec.instances
      in
      (* one flat instance list across cold cohorts: the pool shards
         round-robin, results come back in input order *)
      let instances =
        List.concat_map
          (fun cohort ->
            List.init spec.instances (fun ordinal ->
                { Fleet.Instance_id.cohort; ordinal }))
          cold
      in
      let snapshots =
        Exp_pool.map ~jobs
          (fun _sink inst -> run_instance spec ~program ~advice inst)
          instances
        |> List.concat
      in
      (* all writes from the main domain, in deterministic order *)
      let diags = ref diags0 in
      List.iter
        (fun s ->
          match Fleet_store.save ~dir s with
          | Ok () -> ()
          | Error e -> diags := !diags @ [ e ])
        snapshots;
      let merged, _deleted, cerrs =
        if spec.keep_raw then (0, 0, []) else Fleet_store.compact ~dir
      in
      diags := !diags @ cerrs;
      let retained_deleted =
        match spec.retain_windows with
        | Some max_windows when max_windows > 0 ->
            Fleet_store.retain ~dir ~max_windows
        | Some _ | None -> 0
      in
      Ok
        {
          cohorts = List.length cohorts;
          instances = List.length cohorts * spec.instances;
          windows = spec.windows;
          simulated = List.length instances;
          skipped;
          snapshots = List.length snapshots;
          samples_taken =
            List.fold_left
              (fun acc (s : Fleet_store.segment) ->
                acc + s.Fleet_store.samples)
              0 snapshots;
          merged;
          retained_deleted;
          store_bytes = Fleet_store.store_bytes ~dir;
          diags = !diags;
        }
