(* The continuous-profiling collector.

   Drives N simulated VM instances per cohort through W collection
   windows of one application iteration each, snapshotting the
   per-window delta of every profile table into the segment store.

   Determinism contract (the fleet inherits Exp_pool's): instances
   shard across domains with [Exp_pool.map], which returns results in
   input order; each instance is a pure function of its
   [Fleet.Instance_id] (seeded PRNG, virtual time, replay advice), and
   all store writes happen on the main domain after the join — so a
   run at [--jobs 4] is byte-identical to [--jobs 1], and a rerun with
   the same seeds is byte-identical to the first.

   Two deliberate choices:

   - Replay mode.  Instances compile per advice at first invocation
     and never re-instrument, so the cumulative PEP tables are
     monotone and per-window deltas are exact (an adaptive recompile
     would clear the method's path slot mid-stream).  The advice comes
     from a per-cohort two-iteration adaptive warmup, phase 0.

   - Compressed timer.  One application iteration is a window; at the
     default tick period a small iteration sees too few ticks to
     promote (and hence PEP-instrument) the minority methods drift
     detection depends on.  The collector divides the tick period by
     [tick_shrink] (default 8) for warmup and collection alike —
     virtual time stays exact, there are just more samples per cycle,
     which is precisely what a continuous profiler wants from a short
     window. *)

type spec = {
  workload : Workload.t;
  size : int option;
  seed : int;
  samples : int;
  stride : int;
  cohorts : (string * Fleet.Drift.t) list;
  instances : int;
  windows : int;
  tick_shrink : int;
  keep_raw : bool;
  retain_windows : int option;
  faults : Fault_plan.t;
}

let default_cohorts ~windows =
  [
    ("steady", Fleet.Drift.No_drift);
    ("shift", Fleet.Drift.Phase_shift { at_window = windows / 2; phase = 1 });
  ]

let default_spec ?size ?(seed = 42) ?(samples = 64) ?(stride = 17)
    ?(instances = 8) ?(windows = 4) ?(tick_shrink = 8) ?(keep_raw = false)
    ?retain_windows ?cohorts ?(faults = Fault_plan.empty) workload =
  {
    workload;
    size;
    seed;
    samples;
    stride;
    cohorts =
      (match cohorts with Some c -> c | None -> default_cohorts ~windows);
    instances;
    windows;
    tick_shrink;
    keep_raw;
    retain_windows;
    faults;
  }

type report = {
  cohorts : int;
  instances : int;
  windows : int;
  simulated : int;  (* instances executed this run *)
  skipped : int;  (* instances already covered by stored segments *)
  snapshots : int;  (* raw snapshots written *)
  samples_taken : int;  (* PEP samples across new snapshots *)
  merged : int;  (* merged segments written by compaction *)
  retained_deleted : int;  (* segments dropped by retention *)
  store_bytes : int;
  healed_open : int;  (* torn files removed by the recovery scan *)
  counts : Fault_injector.counts option;  (* fault accounting, if a plan ran *)
  degraded : (string * int * string) list;  (* degraded.log after this run *)
  diags : Dcg.parse_error list;
}

let size_of spec = Option.value ~default:spec.workload.Workload.default_size spec.size

let cost_of spec =
  {
    Cost_model.default with
    Cost_model.tick_period =
      max 1 (Cost_model.default.Cost_model.tick_period / max 1 spec.tick_shrink);
  }

let sampling_of spec = Sampling.pep ~samples:spec.samples ~stride:spec.stride

(* The fleet's run configuration, identified the same way the run
   cache identifies it. *)
let config_key spec =
  Exp_harness.config_key
    {
      Exp_harness.default with
      Exp_harness.profiling =
        Exp_harness.Pep_profiled
          { sampling = sampling_of spec; zero = `Hottest; numbering = `Smart };
    }

let cohort_of spec (name, drift) =
  {
    Fleet.Cohort.name;
    workload = spec.workload.Workload.name;
    size = size_of spec;
    seed = spec.seed;
    config_key = config_key spec;
    drift;
  }

(* Per-cohort warmup: Exp_harness.make_env with the compressed timer —
   adaptive two-iteration run in phase 0, advice captured.  Shared
   across cohorts (steady and shift run the same program and seed; the
   drift only applies to collection windows). *)
let warmup_env spec =
  let program = Workload.program ~size:(size_of spec) spec.workload in
  Verify.program program;
  let st = Machine.create ~cost:(cost_of spec) ~seed:spec.seed program in
  let driver =
    Driver.create
      {
        Driver.default_options with
        Driver.mode =
          Driver.Adaptive { thresholds = Driver.default_thresholds };
      }
      st
  in
  ignore (Driver.run driver);
  ignore (Driver.run driver);
  (program, Driver.advice driver)

(* ------------------------ one instance's run ----------------------- *)

(* Cursors over the cumulative tables, so each window snapshots its
   delta.  All three tables are monotone in replay mode; [max 0] is
   belt and braces. *)
type cursors = {
  c_paths : (int * int, int) Hashtbl.t;
  c_edges : (int * int, int * int) Hashtbl.t;
  c_dcg : (int * int, int) Hashtbl.t;
  mutable c_samples : int;
}

let delta3 tbl rows =
  List.filter_map
    (fun (a, b, c) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl (a, b)) in
      Hashtbl.replace tbl (a, b) c;
      if c - prev > 0 then Some (a, b, c - prev) else None)
    rows

let delta4 tbl rows =
  List.filter_map
    (fun (a, b, c, d) ->
      let pc, pd = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl (a, b)) in
      Hashtbl.replace tbl (a, b) (c, d);
      let dc = max 0 (c - pc) and dd = max 0 (d - pd) in
      if dc > 0 || dd > 0 then Some (a, b, dc, dd) else None)
    rows

let cumulative_paths (pep : Pep.t) =
  let rows = ref [] in
  Array.iteri
    (fun mi prof ->
      Path_profile.iter
        (fun (e : Path_profile.entry) ->
          if e.Path_profile.count > 0 then
            rows := (mi, e.Path_profile.path_id, e.Path_profile.count) :: !rows)
        prof)
    pep.Pep.paths;
  List.sort compare !rows

let cumulative_edges (pep : Pep.t) =
  let rows = ref [] in
  Array.iteri
    (fun mi prof ->
      List.iter
        (fun (br, (tk, nt)) -> rows := (mi, br, tk, nt) :: !rows)
        (Edge_profile.entries prof))
    pep.Pep.edges;
  List.sort compare !rows

let cumulative_dcg dcg = List.sort compare (Dcg.edges dcg)

(* Run one instance through every window, returning its raw segments
   (worker-domain safe: touches only its own machine, tables and — when
   a fault plan is live — its own injector's keyed streams).

   Crash semantics: [fire_instance_crash] is consulted once per window;
   a hit kills the instance mid-window, losing that window's snapshot.
   A restart replays the pure simulation from scratch — byte-identical
   snapshots — and re-draws from the same persistent keyed stream, so
   it may crash at a different window.  Windows that completed in {e
   any} attempt were already published to the collector (they survive,
   exactly as a crashed production instance's flushed windows would);
   once the restart cap is exhausted the never-completed tail is lost.
   Returns the surviving snapshots in window order plus the first lost
   window index, if any. *)
let run_instance spec ~program ~advice ?faults instance =
  let cohort = instance.Fleet.Instance_id.cohort in
  let ikey = Fleet.Instance_id.key instance in
  let attempt () =
    let st =
      Machine.create ~cost:(cost_of spec)
        ~seed:(Fleet.Instance_id.seed instance)
        program
    in
    let driver =
      Driver.create
        {
          Driver.default_options with
          Driver.mode = Driver.Replay advice;
          pep =
            Some
              { Driver.sampling = sampling_of spec;
                zero = `Hottest;
                numbering = `Smart };
          verify = false;
        }
        st
    in
    let pep = Option.get (Driver.pep driver) in
    let methods =
      Array.map (fun cm -> cm.Machine.meth.Method.name) st.Machine.methods
    in
    let cursors =
      {
        c_paths = Hashtbl.create 256;
        c_edges = Hashtbl.create 256;
        c_dcg = Hashtbl.create 64;
        c_samples = 0;
      }
    in
    let rec windows acc w =
      if w >= spec.windows then `Done (List.rev acc)
      else
        let crashed =
          match faults with
          | Some inj -> Fault_injector.fire_instance_crash inj ~instance:ikey ~window:w
          | None -> false
        in
        if crashed then `Crashed (List.rev acc)
        else begin
          (* the drift plan is applied between windows, like a deploy or
             traffic shift landing in production *)
          let phase = Fleet.Drift.phase cohort.Fleet.Cohort.drift ~window:w in
          if Array.length st.Machine.globals > Phased.phase_global then
            st.Machine.globals.(Phased.phase_global) <- phase;
          let start_cycle = st.Machine.cycles in
          ignore (Driver.run driver);
          let end_cycle = st.Machine.cycles in
          let paths = delta3 cursors.c_paths (cumulative_paths pep) in
          let edges = delta4 cursors.c_edges (cumulative_edges pep) in
          let dcg = delta3 cursors.c_dcg (cumulative_dcg (Driver.dcg driver)) in
          let total_samples = Pep.n_samples pep in
          let samples = max 0 (total_samples - cursors.c_samples) in
          cursors.c_samples <- total_samples;
          let s =
            {
              Fleet_store.cohort;
              window = Fleet.Window.raw ~index:w ~start_cycle ~end_cycle;
              origin = instance.Fleet.Instance_id.ordinal;
              instances = 1;
              samples;
              methods;
              paths;
              edges;
              dcg;
            }
          in
          windows (s :: acc) (w + 1)
        end
    in
    windows [] 0
  in
  match faults with
  | None -> (
      match attempt () with
      | `Done snaps -> (snaps, None)
      | `Crashed _ -> assert false)
  | Some inj ->
      let cap = (Fault_injector.plan inj).Fault_plan.crash_restarts in
      (* published.(w) holds window w's snapshot once any attempt
         completes it — identical bytes every attempt, so "published by
         an earlier life of the instance" and "published now" agree *)
      let published = Array.make spec.windows None in
      let publish snaps =
        List.iter
          (fun (s : Fleet_store.segment) ->
            published.(s.Fleet_store.window.Fleet.Window.lo) <- Some s)
          snaps
      in
      let rec go attempt_no =
        match attempt () with
        | `Done snaps -> publish snaps
        | `Crashed snaps ->
            publish snaps;
            if attempt_no < cap then begin
              Fault_injector.note_instance_restart inj ~instance:ikey
                ~attempt:(attempt_no + 1);
              go (attempt_no + 1)
            end
            else Fault_injector.note_instance_lost inj ~instance:ikey
      in
      go 0;
      let snaps =
        List.filter_map Fun.id (Array.to_list published)
      in
      let lost_from =
        let rec first w =
          if w >= spec.windows then None
          else if published.(w) = None then Some w
          else first (w + 1)
        in
        first 0
      in
      (snaps, lost_from)

(* --------------------------- the fleet run ------------------------- *)

(* A cohort is warm when every window 0..W-1 already has a merged
   segment with the full instance count — then this run simulates
   nothing for it (the CI smoke asserts simulated=0 on a re-run). *)
let covered ~existing (spec : spec) cohort =
  let windows =
    List.filter_map
      (fun (s : Fleet_store.segment) ->
        if
          s.Fleet_store.origin < 0
          && Fleet.Cohort.equal s.Fleet_store.cohort cohort
          && s.Fleet_store.instances = spec.instances
          && s.Fleet_store.window.Fleet.Window.lo
             = s.Fleet_store.window.Fleet.Window.hi
        then Some s.Fleet_store.window.Fleet.Window.lo
        else None)
      existing
  in
  List.for_all (fun w -> List.mem w windows)
    (List.init spec.windows (fun w -> w))

let instance_key_of (s : Fleet_store.segment) =
  Fleet.Instance_id.key
    { Fleet.Instance_id.cohort = s.Fleet_store.cohort; ordinal = s.Fleet_store.origin }

let run ?(jobs = 1) ~dir spec =
  match Fleet_store.open_ dir with
  | Error e -> Error e
  | Ok recovery ->
      let existing, diags0 = Fleet_store.load_all ~dir in
      let diags = ref diags0 in
      (* Segments that fail decode without journal evidence are not
         crash debris but silent damage: quarantine them so the store
         is no longer poisoned and coverage gaps trigger re-collection
         below.  The diagnostic still surfaces. *)
      List.iter
        (fun (e : Dcg.parse_error) ->
          match e.Dcg.file with
          | Some f when Filename.check_suffix f ".seg" && Sys.file_exists f -> (
              match Fleet_store.quarantine f with
              | Ok () -> ()
              | Error qe -> diags := !diags @ [ qe ])
          | _ -> ())
        diags0;
      let program, advice = warmup_env spec in
      let cohorts = List.map (cohort_of spec) spec.cohorts in
      let cold =
        List.filter (fun c -> not (covered ~existing spec c)) cohorts
      in
      let skipped =
        (List.length cohorts - List.length cold) * spec.instances
      in
      let plan = spec.faults in
      let active = not (Fault_plan.is_empty plan) in
      (* main-domain injector: write-side fault sites plus the absorbed
         accounting of every worker-side injector *)
      let fleet_inj = if active then Some (Fault_injector.create plan) else None in
      (* one flat instance list across cold cohorts: the pool shards
         round-robin, results come back in input order *)
      let instances =
        List.concat_map
          (fun cohort ->
            List.init spec.instances (fun ordinal ->
                { Fleet.Instance_id.cohort; ordinal }))
          cold
      in
      let results =
        Exp_pool.map ~jobs
          (fun _sink inst ->
            if active then begin
              (* per-instance injector: keyed streams make its decisions
                 independent of which domain runs it *)
              let inj = Fault_injector.create plan in
              let snaps, lost = run_instance spec ~program ~advice ~faults:inj inst in
              (inst, snaps, lost, Some (Fault_injector.counts inj))
            end
            else
              let snaps, lost = run_instance spec ~program ~advice inst in
              (inst, snaps, lost, None))
          instances
      in
      (* merge worker accounting on the main domain, in input order *)
      (match fleet_inj with
      | Some inj ->
          List.iter
            (fun (_, _, _, c) ->
              match c with Some c -> Fault_injector.absorb inj c | None -> ())
            results
      | None -> ());
      let note_degraded ~cohort ~window ~reason =
        match Fleet_store.note_degraded ~dir ~cohort ~window ~reason with
        | Ok () -> ()
        | Error e -> diags := !diags @ [ e ]
      in
      (* windows a lost instance never completed: degraded for good *)
      List.iter
        (fun (inst, _, lost, _) ->
          match lost with
          | Some from_w ->
              let name =
                inst.Fleet.Instance_id.cohort.Fleet.Cohort.name
              in
              for w = from_w to spec.windows - 1 do
                note_degraded ~cohort:name ~window:w ~reason:"lost"
              done
          | None -> ())
        results;
      let snapshots = List.concat_map (fun (_, s, _, _) -> s) results in
      (* Stragglers: a window that misses its deadline arrives up to
         straggler-timeout windows late; writes land in arrival order
         (stable, so intra-window order is preserved).  All decisions
         are per-instance keyed — the order is the same for any job
         count. *)
      let arrivals =
        match fleet_inj with
        | None -> List.map (fun s -> (s, 0)) snapshots
        | Some inj ->
            List.map
              (fun (s : Fleet_store.segment) ->
                let w = s.Fleet_store.window.Fleet.Window.lo in
                match
                  Fault_injector.fire_straggler inj
                    ~instance:(instance_key_of s) ~window:w
                with
                | Some delay -> (s, delay)
                | None -> (s, 0))
              snapshots
            |> List.stable_sort
                 (fun ((a : Fleet_store.segment), da) (b, db) ->
                   compare
                     (a.Fleet_store.window.Fleet.Window.lo + da)
                     (b.Fleet_store.window.Fleet.Window.lo + db))
      in
      (* Write pass with bounded re-collection: a torn or corrupt write
         is detected (journal / digest), the debris removed or
         quarantined, and the segment rewritten.  Injection stays live
         for [seg-retries] rounds, then the final round is forced
         clean, so every converging plan terminates at the healthy
         bytes. *)
      let rec write_round ~round pending =
        let damaged = ref [] in
        List.iter
          (fun ((s : Fleet_store.segment), delay) ->
            let file = Fleet_store.filename ~dir s in
            let base = Filename.basename file in
            (if delay > 0 then
               match fleet_inj with
               | Some inj ->
                   Fault_injector.note_window_catchup inj
                     ~instance:(instance_key_of s)
                     ~window:s.Fleet_store.window.Fleet.Window.lo
               | None -> ());
            let inject =
              match fleet_inj with
              | Some inj when round <= (Fault_injector.plan inj).Fault_plan.seg_retries ->
                  (match Fault_injector.fire_torn_write inj ~file:base with
                  | Some draw -> Some (`Torn draw)
                  | None -> (
                      match Fault_injector.fire_segment_corrupt inj ~file:base with
                      | Some draw -> Some (`Flip draw)
                      | None -> None))
              | _ -> None
            in
            (match Fleet_store.save ?inject ~dir s with
            | Ok () -> ()
            | Error e -> diags := !diags @ [ e ]);
            match inject with
            | Some (`Torn _) -> damaged := (s, `Torn) :: !damaged
            | Some (`Flip _) -> damaged := (s, `Flip) :: !damaged
            | None -> ())
          pending;
        match List.rev !damaged with
        | [] -> ()
        | dmg ->
            let inj = Option.get fleet_inj in
            List.iter
              (fun ((s : Fleet_store.segment), kind) ->
                let file = Fleet_store.filename ~dir s in
                let base = Filename.basename file in
                (match kind with
                | `Torn ->
                    (* what the recovery scan would do at next open:
                       intent without commit, partial bytes -> discard *)
                    (try Sys.remove file with Sys_error _ -> ());
                    Fault_injector.note_write_recovered inj ~file:base
                | `Flip -> (
                    Fault_injector.note_segment_quarantined inj ~file:base
                      ~reason:"digest mismatch";
                    match Fleet_store.quarantine file with
                    | Ok () -> ()
                    | Error e -> diags := !diags @ [ e ]));
                note_degraded ~cohort:s.Fleet_store.cohort.Fleet.Cohort.name
                  ~window:s.Fleet_store.window.Fleet.Window.lo
                  ~reason:"rebuilt")
              dmg;
            write_round ~round:(round + 1)
              (List.map (fun (s, _) -> (s, 0)) dmg)
      in
      write_round ~round:0 arrivals;
      let merged, _deleted, cerrs =
        if spec.keep_raw then (0, 0, []) else Fleet_store.compact ~dir
      in
      diags := !diags @ cerrs;
      let retained_deleted =
        match spec.retain_windows with
        | Some max_windows when max_windows > 0 ->
            Fleet_store.retain ~dir ~max_windows
        | Some _ | None -> 0
      in
      Ok
        {
          cohorts = List.length cohorts;
          instances = List.length cohorts * spec.instances;
          windows = spec.windows;
          simulated = List.length instances;
          skipped;
          snapshots = List.length snapshots;
          samples_taken =
            List.fold_left
              (fun acc (s : Fleet_store.segment) ->
                acc + s.Fleet_store.samples)
              0 snapshots;
          merged;
          retained_deleted;
          store_bytes = Fleet_store.store_bytes ~dir;
          healed_open = recovery.Fleet_store.healed;
          counts = Option.map Fault_injector.counts fleet_inj;
          degraded = Fleet_store.load_degraded ~dir;
          diags = !diags;
        }
