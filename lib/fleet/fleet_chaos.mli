(** Fleet-level chaos sweep: the collector under {!Exp_chaos}'s curated
    fleet fault plans, checked against a healthy run of the same spec.

    The oracle is byte-level recovery convergence.  For each case the
    sweep asserts:

    - the run completes (faults degrade, never crash the collector);
    - {!Fault_injector.accounted}: every injection has a matching
      recorded response;
    - a plan with fleet fault sites actually fired; a plan without
      ([noop]) recorded nothing and left the store byte-identical;
    - a converging plan's store fingerprint — sorted (file, md5) over
      [*.seg] — equals the healthy run's, with no "lost" records in
      the degraded log;
    - a data-losing plan ([doomed]) diverged and accounted every lost
      window in the degraded log;
    - one clean rerun over the faulted store converges it to the
      healthy bytes (a no-op warm rerun when it already converged, a
      full re-collection of lost windows otherwise). *)

type report = {
  flabel : string;
  converges : bool;  (** the case's declared expectation *)
  identical : bool;
      (** faulted store was byte-identical to healthy before the heal
          rerun *)
  counts : Fault_injector.counts option;
  healed_open : int;  (** torn files removed by the open recovery scan *)
  lost : int;  (** "lost" records in the degraded log *)
  rebuilt : int;  (** "rebuilt" records in the degraded log *)
  violations : string list;  (** empty means every invariant held *)
}

(** Sorted (basename, md5 hex) of every [*.seg] in [dir] — the identity
    the convergence invariants compare. *)
val fingerprint : string -> (string * string) list

(** Run the healthy baseline into [dir/healthy], then each case into
    [dir/<label>], returning one report per case in case order. *)
val sweep :
  ?jobs:int ->
  ?cases:Exp_chaos.fleet_case list ->
  dir:string ->
  Fleet_collector.spec ->
  report list

val passed : report list -> bool

(** One line per case (fault and degradation accounting, convergence
    verdict), plus one indented line per violation. *)
val pp_report : report Fmt.t
