(** Queries over the fleet's segment store: hotspots, folded-stack
    export, and rule-based diff triage.

    Every function is a pure function of the segments it is given, and
    every result is deterministically ordered — reruns, job counts and
    store layouts never change query output. *)

(** Segment selection: by cohort name and/or an inclusive window-index
    range (a segment qualifies when its window overlaps the range). *)
type filter = { cohort : string option; lo : int option; hi : int option }

(** No constraints. *)
val any : filter

(** Filtered segments, with raw segments shadowed by any same-cohort
    merged segment covering their window. *)
val select : Fleet_store.segment list -> filter -> Fleet_store.segment list

(** Aggregated profile over a segment list, rows re-keyed through a
    unified method-name table (segments may disagree on dense
    indexes). *)
type view = {
  methods : string array;
  paths : (int * int * int) list;  (** method idx, path id, count *)
  edges : (int * int * int * int) list;
      (** method idx, branch, taken, not-taken *)
  dcg : (int * int * int) list;  (** caller idx (-1 root), callee, weight *)
  samples : int;
  segments : int;
  span : Fleet.Window.t option;
}

val view : Fleet_store.segment list -> view
val name_of : view -> int -> string

type kind = Profile_export.kind

(** Top-[n] hotspots, scored with per-window exponential decay
    ([count * decay^(latest_window - window)]): recent windows
    dominate, sustained heat still beats a one-window spike.  Labels
    are ["method/path#id"], ["method/br#id"] or ["caller->callee"];
    ordered by score descending, ties by label. *)
val top :
  ?decay:float ->
  n:int ->
  kind ->
  Fleet_store.segment list ->
  (string * float) list

(** Folded stacks over a view, in [pepsim top]'s exact frame
    vocabulary ({!Profile_export.paths_of} and friends). *)
val folded : kind -> view -> Folded.t

(** Triage thresholds. *)
type thresholds = {
  new_share : float;
      (** share of current path executions making an unseen path hot *)
  edge_shift : float;  (** taken-bias delta flagging a flow shift *)
  min_edge : int;  (** branch traffic below this is noise *)
  min_dcg : int;  (** callee weight below this is noise *)
}

val default_thresholds : thresholds

type finding =
  | New_hot_path of { meth : string; path_id : int; share : float }
      (** a path never recorded in the baseline now carries a
          non-trivial share of all path executions *)
  | Edge_shift of {
      meth : string;
      branch : int;
      from_bias : float;
      to_bias : float;
    }  (** a branch's taken-bias moved by at least [edge_shift] *)
  | Caller_change of {
      callee : string;
      from_caller : string;
      to_caller : string;
    }  (** a callee's dominant sampled caller moved *)

val render_finding : finding -> string

(** Rule-based triage of [current] against [baseline]; joins are by
    method name, findings sorted by rendering. *)
val diff :
  ?thresholds:thresholds ->
  baseline:view ->
  current:view ->
  unit ->
  finding list
