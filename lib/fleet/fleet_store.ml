(* Time-windowed, digest-protected profile segments.

   One binary file per segment, reusing the run cache's wire
   vocabulary (Exp_codec.Bin varints + raw MD5 trailer) and directory
   discipline (Exp_store.prepare_dir / atomic write_file).  A segment
   carries per-window *deltas* of the three profile tables — paths,
   edges, DCG — plus the method-name table of the program that
   produced them, so queries never rebuild a program or machine.

   Lifecycle: the collector writes one raw segment per (instance,
   window); [compact] folds the raws of each (cohort, window) into one
   merged segment (origin = -1) and deletes them; [retain] trims the
   oldest windows.  Everything is deterministic: file names are MD5s
   of the segment's identity key, loads come back sorted by key. *)

type segment = {
  cohort : Fleet.Cohort.t;
  window : Fleet.Window.t;
  origin : int;  (* contributing instance ordinal; -1 once merged *)
  instances : int;
  samples : int;
  methods : string array;
  paths : (int * int * int) list;  (* method, path id, count *)
  edges : (int * int * int * int) list;  (* method, branch, taken, not-taken *)
  dcg : (int * int * int) list;  (* caller (-1 = root), callee, weight *)
}

let magic = "PEPSEG"
let version = 1

let segment_key s =
  Fmt.str "%s|%s|origin=%d"
    (Fleet.Cohort.key s.cohort)
    (Fleet.Window.key s.window)
    s.origin

let filename ~dir s =
  Filename.concat dir (Digest.to_hex (Digest.string (segment_key s)) ^ ".seg")

let err ?(text = "") file reason =
  { Dcg.file = Some file; line = 0; text; reason }

(* ------------------------------ encode ----------------------------- *)

let encode s =
  let w = Exp_codec.Bin.writer () in
  Exp_codec.Bin.raw w magic;
  Exp_codec.Bin.byte w version;
  Exp_codec.Bin.str w (segment_key s);
  Exp_codec.Bin.str w s.cohort.Fleet.Cohort.name;
  Exp_codec.Bin.str w s.cohort.Fleet.Cohort.workload;
  Exp_codec.Bin.int w s.cohort.Fleet.Cohort.size;
  Exp_codec.Bin.int w s.cohort.Fleet.Cohort.seed;
  Exp_codec.Bin.str w s.cohort.Fleet.Cohort.config_key;
  (match s.cohort.Fleet.Cohort.drift with
  | Fleet.Drift.No_drift -> Exp_codec.Bin.byte w 0
  | Fleet.Drift.Phase_shift { at_window; phase } ->
      Exp_codec.Bin.byte w 1;
      Exp_codec.Bin.int w at_window;
      Exp_codec.Bin.int w phase);
  Exp_codec.Bin.int w s.window.Fleet.Window.lo;
  Exp_codec.Bin.int w s.window.Fleet.Window.hi;
  Exp_codec.Bin.int w s.window.Fleet.Window.start_cycle;
  Exp_codec.Bin.int w s.window.Fleet.Window.end_cycle;
  Exp_codec.Bin.int w s.origin;
  Exp_codec.Bin.int w s.instances;
  Exp_codec.Bin.int w s.samples;
  Exp_codec.Bin.int w (Array.length s.methods);
  Array.iter (Exp_codec.Bin.str w) s.methods;
  let rows3 rows =
    Exp_codec.Bin.int w (List.length rows);
    List.iter
      (fun (a, b, c) ->
        Exp_codec.Bin.int w a;
        Exp_codec.Bin.int w b;
        Exp_codec.Bin.int w c)
      rows
  in
  rows3 s.paths;
  Exp_codec.Bin.int w (List.length s.edges);
  List.iter
    (fun (a, b, c, d) ->
      Exp_codec.Bin.int w a;
      Exp_codec.Bin.int w b;
      Exp_codec.Bin.int w c;
      Exp_codec.Bin.int w d)
    s.edges;
  rows3 s.dcg;
  Exp_codec.Bin.contents_with_digest w

(* ------------------------------ decode ----------------------------- *)

exception Fail of Dcg.parse_error

let decode ~file contents =
  let fail reason = raise (Fail (err file reason)) in
  try
    let n = String.length contents in
    if n < String.length magic + 1 then fail "truncated fleet segment";
    if String.sub contents 0 (String.length magic) <> magic then
      fail "not a pepsim fleet segment";
    let v = Char.code contents.[String.length magic] in
    if v <> version then
      fail (Fmt.str "unsupported segment version v%d (want v%d)" v version);
    if n < String.length magic + 1 + 16 then
      fail "truncated fleet segment (missing digest trailer)";
    if not (Exp_codec.Bin.check_digest contents) then
      fail "corrupt fleet segment (content digest mismatch)";
    let r =
      Exp_codec.Bin.reader ~pos:(String.length magic + 1) ~limit:(n - 16)
        contents
    in
    let stored_key = Exp_codec.Bin.rstr r in
    let name = Exp_codec.Bin.rstr r in
    let workload = Exp_codec.Bin.rstr r in
    let size = Exp_codec.Bin.rint r in
    let seed = Exp_codec.Bin.rint r in
    let config_key = Exp_codec.Bin.rstr r in
    let drift =
      match Exp_codec.Bin.rbyte r with
      | 0 -> Fleet.Drift.No_drift
      | 1 ->
          let at_window = Exp_codec.Bin.rint r in
          let phase = Exp_codec.Bin.rint r in
          Fleet.Drift.Phase_shift { at_window; phase }
      | t -> fail (Fmt.str "unknown drift tag %d" t)
    in
    let lo = Exp_codec.Bin.rint r in
    let hi = Exp_codec.Bin.rint r in
    let start_cycle = Exp_codec.Bin.rint r in
    let end_cycle = Exp_codec.Bin.rint r in
    let origin = Exp_codec.Bin.rint r in
    let instances = Exp_codec.Bin.rint r in
    let samples = Exp_codec.Bin.rint r in
    let n_methods = Exp_codec.Bin.rint r in
    if n_methods < 0 then fail "negative method table length";
    let methods =
      Array.init n_methods (fun _ -> Exp_codec.Bin.rstr r)
    in
    let count what =
      let k = Exp_codec.Bin.rint r in
      if k < 0 then fail (Fmt.str "negative %s section length" what);
      k
    in
    let paths =
      List.init (count "paths") (fun _ ->
          let a = Exp_codec.Bin.rint r in
          let b = Exp_codec.Bin.rint r in
          let c = Exp_codec.Bin.rint r in
          (a, b, c))
    in
    let edges =
      List.init (count "edges") (fun _ ->
          let a = Exp_codec.Bin.rint r in
          let b = Exp_codec.Bin.rint r in
          let c = Exp_codec.Bin.rint r in
          let d = Exp_codec.Bin.rint r in
          (a, b, c, d))
    in
    let dcg =
      List.init (count "dcg") (fun _ ->
          let a = Exp_codec.Bin.rint r in
          let b = Exp_codec.Bin.rint r in
          let c = Exp_codec.Bin.rint r in
          (a, b, c))
    in
    if not (Exp_codec.Bin.at_end r) then fail "trailing garbage in segment";
    let s =
      {
        cohort =
          { Fleet.Cohort.name; workload; size; seed; config_key; drift };
        window = { Fleet.Window.lo; hi; start_cycle; end_cycle };
        origin;
        instances;
        samples;
        methods;
        paths;
        edges;
        dcg;
      }
    in
    (* self-check: the stored identity must match the decoded fields
       (catches a segment renamed or spliced across stores) *)
    if segment_key s <> stored_key then
      fail
        (Fmt.str "segment identity mismatch (stored %S, decoded %S)" stored_key
           (segment_key s));
    Ok s
  with
  | Fail e -> Error e
  | Exp_codec.Bin.Malformed m ->
      Error (err file ("truncated fleet segment (" ^ m ^ ")"))

(* ----------------------- journal & recovery ------------------------ *)

(* Write-ahead journal: before a segment's bytes move toward their
   final name an intent record ("W <basename> <md5 of bytes>") is
   appended; after the atomic rename lands a commit record
   ("C <basename>") follows.  On open, an intent without a commit
   marks crash debris: if the named file is missing or fails decode it
   is removed (the write was torn), if it decodes it merely missed its
   commit line (crash between rename and append).  Either way the
   store converges to decode-valid segments only, so a run killed at
   any byte offset can be resumed to the healthy store's exact bytes.
   A torn *journal* line (crash mid-append) is itself expected debris
   and is skipped, never reported. *)

let journal_file dir = Filename.concat dir "fleet.journal"

let append_journal ~dir line =
  let file = journal_file dir in
  try
    Out_channel.with_open_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644 file
      (fun oc -> Out_channel.output_string oc (line ^ "\n"));
    Ok ()
  with Sys_error m -> Error (err file ("journal append failed: " ^ m))

type recovery = { healed : int; late_commits : int }

let no_recovery = { healed = 0; late_commits = 0 }

let scan_journal dir =
  let file = journal_file dir in
  if not (Sys.file_exists file) then no_recovery
  else begin
    let lines =
      match Exp_store.read_file file with
      | Ok contents -> String.split_on_char '\n' contents
      | Error _ -> []
    in
    (* basename -> committed?  (insertion keeps only the last intent) *)
    let pending = Hashtbl.create 8 in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "W"; base; _digest ] -> Hashtbl.replace pending base false
        | [ "C"; base ] -> Hashtbl.replace pending base true
        | _ -> ())
      lines;
    let healed = ref 0 and late = ref 0 in
    Hashtbl.iter
      (fun base committed ->
        if not committed then begin
          let f = Filename.concat dir base in
          if Sys.file_exists f then begin
            let valid =
              match Exp_store.read_file f with
              | Error _ -> false
              | Ok contents -> Result.is_ok (decode ~file:f contents)
            in
            if valid then incr late
            else begin
              (try Sys.remove f with Sys_error _ -> ());
              incr healed
            end
          end
        end)
      pending;
    (* every intent is resolved; drop the journal so it cannot grow
       without bound across runs *)
    (try Sys.remove file with Sys_error _ -> ());
    { healed = !healed; late_commits = !late }
  end

let open_ dir =
  match Exp_store.prepare_dir dir with
  | Error _ as e -> e
  | Ok () -> Ok (scan_journal dir)

(* Move a damaged segment aside (evidence preserved, store no longer
   poisoned); content-addressed names mean a re-collected replacement
   lands under the original name. *)
let quarantine file =
  try
    Sys.rename file (file ^ ".quarantined");
    Ok ()
  with Sys_error m -> Error (err file ("quarantine failed: " ^ m))

(* ------------------------- degraded-data log ----------------------- *)

(* Windows rebuilt from quarantine or lost with an instance are
   recorded in a sidecar, never in the segment format itself — a
   healed store must stay byte-identical to a never-damaged one, so
   provenance cannot live in the segments. *)

let degraded_file dir = Filename.concat dir "degraded.log"

let note_degraded ~dir ~cohort ~window ~reason =
  let file = degraded_file dir in
  if
    String.exists (fun c -> c = '\t' || c = '\n' || c = '\r') cohort
    || String.exists (fun c -> c = '\t' || c = '\n' || c = '\r') reason
  then Error (err file "refusing to log: field contains a tab or newline")
  else
    try
      Out_channel.with_open_gen
        [ Open_append; Open_creat; Open_binary ]
        0o644 file
        (fun oc ->
          Out_channel.output_string oc
            (Fmt.str "%s\t%d\t%s\n" cohort window reason));
      Ok ()
    with Sys_error m -> Error (err file ("degraded log append failed: " ^ m))

let load_degraded ~dir =
  match Exp_store.read_file (degraded_file dir) with
  | Error _ -> []
  | Ok contents ->
      String.split_on_char '\n' contents
      |> List.filter_map (fun line ->
             match String.split_on_char '\t' line with
             | [ cohort; window; reason ] -> (
                 match int_of_string_opt window with
                 | Some w -> Some (cohort, w, reason)
                 | None -> None)
             | _ -> None)
      |> List.sort_uniq compare

(* ---------------------------- save / load -------------------------- *)

let save ?inject ~dir s =
  let flat a = not (String.contains a '\n' || String.contains a '\r') in
  if
    not
      (Array.for_all flat s.methods
      && flat (Fleet.Cohort.key s.cohort))
  then
    Error
      (err (filename ~dir s) "refusing to save: segment field contains a newline")
  else begin
    let file = filename ~dir s in
    let base = Filename.basename file in
    let bytes = encode s in
    let intent () =
      append_journal ~dir
        (Fmt.str "W %s %s" base (Digest.to_hex (Digest.string bytes)))
    in
    match inject with
    | None -> (
        match intent () with
        | Error _ as e -> e
        | Ok () -> (
            match
              Exp_store.write_file ~tmp_prefix:"fleet-" ~file bytes
            with
            | Error _ as e -> e
            | Ok () -> append_journal ~dir ("C " ^ base)))
    | Some (`Torn draw) -> (
        (* simulate dying mid-write: a strict prefix lands under the
           final name, the commit record never does *)
        match intent () with
        | Error _ as e -> e
        | Ok () -> (
            let cut = 1 + (draw mod max 1 (String.length bytes - 1)) in
            try
              Out_channel.with_open_bin file (fun oc ->
                  Out_channel.output_string oc (String.sub bytes 0 cut));
              Ok ()
            with Sys_error m -> Error (err file ("write failed: " ^ m))))
    | Some (`Flip draw) -> (
        (* the write completes (intent + commit) but a byte is flipped:
           silent corruption only the digest check can see *)
        match intent () with
        | Error _ as e -> e
        | Ok () -> (
            let b = Bytes.of_string bytes in
            let pos = draw mod Bytes.length b in
            Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
            match
              Exp_store.write_file ~tmp_prefix:"fleet-" ~file
                (Bytes.to_string b)
            with
            | Error _ as e -> e
            | Ok () -> append_journal ~dir ("C " ^ base)))
  end

let compare_segments a b =
  compare
    (Fleet.Cohort.key a.cohort, a.window.Fleet.Window.lo,
     a.window.Fleet.Window.hi, a.origin)
    (Fleet.Cohort.key b.cohort, b.window.Fleet.Window.lo,
     b.window.Fleet.Window.hi, b.origin)

(* Every [*.seg] in [dir], decoded, sorted by identity; unreadable or
   corrupt files are collected as diagnostics, never trusted. *)
let load_all ~dir =
  match Sys.readdir dir with
  | exception Sys_error m -> ([], [ err dir ("unreadable store: " ^ m) ])
  | entries ->
      let files =
        Array.to_list entries
        |> List.filter (fun f -> Filename.check_suffix f ".seg")
        |> List.sort compare
      in
      let segs, errs =
        List.fold_left
          (fun (segs, errs) f ->
            let file = Filename.concat dir f in
            match Exp_store.read_file file with
            | Error e -> (segs, e :: errs)
            | Ok contents -> (
                match decode ~file contents with
                | Ok s -> (s :: segs, errs)
                | Error e -> (segs, e :: errs)))
          ([], []) files
      in
      (List.sort compare_segments segs, List.rev errs)

(* ------------------------------ merge ------------------------------ *)

let sum_rows3 rows =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (a, b, c) ->
      let k = (a, b) in
      Hashtbl.replace tbl k (c + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    rows;
  Hashtbl.fold (fun (a, b) c acc -> (a, b, c) :: acc) tbl []
  |> List.sort compare

let sum_rows4 rows =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (a, b, c, d) ->
      let k = (a, b) in
      let c0, d0 = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (c + c0, d + d0))
    rows;
  Hashtbl.fold (fun (a, b) (c, d) acc -> (a, b, c, d) :: acc) tbl []
  |> List.sort compare

(* Fold same-cohort segments into one: windows spanned, instance
   counts summed for distinct origins (raws) or taken as the fleet
   width (merged inputs), rows summed.  Raising on mixed cohorts keeps
   merge bugs loud — callers always group by cohort first. *)
let merge = function
  | [] -> invalid_arg "Fleet_store.merge: empty"
  | first :: _ as segs ->
      List.iter
        (fun s ->
          if not (Fleet.Cohort.equal s.cohort first.cohort) then
            invalid_arg "Fleet_store.merge: mixed cohorts")
        segs;
      let window =
        List.fold_left
          (fun acc s -> Fleet.Window.span acc s.window)
          first.window segs
      in
      let all_raw = List.for_all (fun s -> s.origin >= 0) segs in
      let instances =
        if all_raw then List.fold_left (fun acc s -> acc + s.instances) 0 segs
        else List.fold_left (fun acc s -> max acc s.instances) 0 segs
      in
      let methods =
        List.fold_left
          (fun acc s ->
            if Array.length s.methods > Array.length acc then s.methods else acc)
          first.methods segs
      in
      {
        cohort = first.cohort;
        window;
        origin = -1;
        instances;
        samples = List.fold_left (fun acc s -> acc + s.samples) 0 segs;
        methods;
        paths = sum_rows3 (List.concat_map (fun s -> s.paths) segs);
        edges = sum_rows4 (List.concat_map (fun s -> s.edges) segs);
        dcg = sum_rows3 (List.concat_map (fun s -> s.dcg) segs);
      }

(* Fold every (cohort, window)'s raw segments into one merged segment
   and delete the raws.  A window that already has a merged segment
   keeps it only while the merged segment covers {e more} instances
   than the fresh raws — a degraded merged window (instance lost,
   quarantine rebuild) is replaced as soon as a full re-collection
   lands, which is what lets a damaged store heal back to the healthy
   bytes.  Returns (merged written, raws deleted). *)
let compact ~dir =
  let segs, errs = load_all ~dir in
  let raws = List.filter (fun s -> s.origin >= 0) segs in
  let merged_instances = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if s.origin < 0 then begin
        let k =
          (Fleet.Cohort.key s.cohort, s.window.Fleet.Window.lo,
           s.window.Fleet.Window.hi)
        in
        let prev =
          Option.value ~default:0 (Hashtbl.find_opt merged_instances k)
        in
        Hashtbl.replace merged_instances k (max prev s.instances)
      end)
    segs;
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      let k =
        (Fleet.Cohort.key s.cohort, s.window.Fleet.Window.lo,
         s.window.Fleet.Window.hi)
      in
      (match Hashtbl.find_opt groups k with
      | Some l -> Hashtbl.replace groups k (s :: l)
      | None ->
          order := k :: !order;
          Hashtbl.replace groups k [ s ]))
    raws;
  let written = ref 0 and deleted = ref 0 and errs = ref errs in
  List.iter
    (fun k ->
      let group = List.rev (Hashtbl.find groups k) in
      let raw_sum = List.fold_left (fun acc s -> acc + s.instances) 0 group in
      let keep_merged =
        match Hashtbl.find_opt merged_instances k with
        | Some mi -> mi > raw_sum
        | None -> false
      in
      let ok =
        if keep_merged then true
        else
          match save ~dir (merge group) with
          | Ok () ->
              incr written;
              true
          | Error e ->
              errs := !errs @ [ e ];
              false
      in
      if ok then
        List.iter
          (fun s ->
            try
              Sys.remove (filename ~dir s);
              incr deleted
            with Sys_error _ -> ())
          group)
    (List.rev !order);
  (!written, !deleted, !errs)

(* Keep only the newest [max_windows] window indexes per cohort
   (merged and raw alike); returns segments deleted. *)
let retain ~dir ~max_windows =
  let segs, _errs = load_all ~dir in
  let latest = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let k = Fleet.Cohort.key s.cohort in
      let hi = s.window.Fleet.Window.hi in
      match Hashtbl.find_opt latest k with
      | Some h when h >= hi -> ()
      | _ -> Hashtbl.replace latest k hi)
    segs;
  let deleted = ref 0 in
  List.iter
    (fun s ->
      let cutoff =
        Hashtbl.find latest (Fleet.Cohort.key s.cohort) - max_windows + 1
      in
      if s.window.Fleet.Window.hi < cutoff then
        try
          Sys.remove (filename ~dir s);
          incr deleted
        with Sys_error _ -> ())
    segs;
  !deleted

let store_bytes ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun acc f ->
          if Filename.check_suffix f ".seg" then
            match
              In_channel.with_open_bin (Filename.concat dir f)
                In_channel.length
            with
            | sz -> acc + Int64.to_int sz
            | exception Sys_error _ -> acc
          else acc)
        0 entries
