(** The fleet collector: continuous profile ingestion from N simulated
    VM instances.

    One {!run} drives every cohort's instances through [windows]
    collection windows (one application iteration each) and lands one
    raw {!Fleet_store.segment} per (instance, window) — the per-window
    {e delta} of the PEP path table, PEP edge table and tick-sampled
    DCG — then compacts raws into per-window merged segments.

    Instances execute in {e replay} mode against advice from a shared
    two-iteration adaptive warmup, so cumulative profiles are monotone
    and window deltas exact; the simulated timer is compressed by
    [tick_shrink] so short windows still sample every hot method.
    Everything is deterministic: reruns and any [?jobs] produce
    byte-identical segments. *)

type spec = {
  workload : Workload.t;
  size : int option;  (** [None] = the workload's default size *)
  seed : int;  (** base seed; instance [i] derives its own from it *)
  samples : int;  (** PEP sampling burst length *)
  stride : int;  (** PEP sampling stride *)
  cohorts : (string * Fleet.Drift.t) list;
  instances : int;  (** instances per cohort *)
  windows : int;  (** collection windows per instance *)
  tick_shrink : int;  (** timer-period compression factor, >= 1 *)
  keep_raw : bool;  (** skip compaction (keep per-instance segments) *)
  retain_windows : int option;  (** keep only the newest N windows *)
  faults : Fault_plan.t;
      (** fleet fault plan ({!Fault_plan.perturbs_fleet} sites): crashes
          and stragglers draw per-instance keyed streams in the
          workers, write damage draws per-file streams on the main
          domain — so injection preserves jobs-N byte-identity, and a
          converging plan heals to the healthy store's exact bytes *)
}

(** A steady control plus a cohort whose workload phase shifts halfway
    through the run — the standard drift-detection pair. *)
val default_cohorts : windows:int -> (string * Fleet.Drift.t) list

(** [PEP(64,17)], seed 42, 8 instances x 4 windows, [default_cohorts],
    tick compression 8, compaction on, no retention. *)
val default_spec :
  ?size:int ->
  ?seed:int ->
  ?samples:int ->
  ?stride:int ->
  ?instances:int ->
  ?windows:int ->
  ?tick_shrink:int ->
  ?keep_raw:bool ->
  ?retain_windows:int ->
  ?cohorts:(string * Fleet.Drift.t) list ->
  ?faults:Fault_plan.t ->
  Workload.t ->
  spec

type report = {
  cohorts : int;
  instances : int;  (** total instances across cohorts *)
  windows : int;
  simulated : int;  (** instances actually executed this run *)
  skipped : int;  (** instances already covered by stored segments *)
  snapshots : int;  (** raw snapshots written *)
  samples_taken : int;  (** PEP samples across new snapshots *)
  merged : int;  (** merged segments written by compaction *)
  retained_deleted : int;  (** segments dropped by retention *)
  store_bytes : int;  (** store size after this run *)
  healed_open : int;
      (** torn files the recovery scan removed when the store opened *)
  counts : Fault_injector.counts option;
      (** full fault/degradation accounting (workers absorbed), when a
          fault plan was active *)
  degraded : (string * int * string) list;
      (** the degraded-data log after this run: (cohort, window,
          reason) for every window rebuilt from quarantine or lost *)
  diags : Dcg.parse_error list;  (** store I/O diagnostics, if any *)
}

(** The cohort identity {!run} derives for a spec entry (exposed so
    queries can address the same store keys). *)
val cohort_of : spec -> string * Fleet.Drift.t -> Fleet.Cohort.t

(** Run the fleet into store [dir].  A cohort whose windows are already
    fully covered by merged segments (same instance count) is skipped
    entirely — a warm rerun reports [simulated = 0].  [jobs] shards
    instances across domains ({!Exp_pool.map}); results are
    byte-identical for any job count. *)
val run :
  ?jobs:int -> dir:string -> spec -> (report, Dcg.parse_error) result
