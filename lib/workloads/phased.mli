(** Phase-shifting workloads for fleet mode.

    Deliberately {e not} part of {!Suite.all}: the static suite is the
    paper's fixed benchmark set (figures, deep checks and the
    differential engine suite all enumerate it), while these workloads
    exist to be driven through externally-injected phase shifts by the
    fleet collector. *)

(** Index of the global the collector writes to advance the phase
    (workload code only reads it). *)
val phase_global : int

(** ~80/20 dispatch mix whose split, the active arm of the minority
    worker, and the leaf method's dominant caller all flip when the
    phase global goes 0→1 — one phase shift trips every triage rule. *)
val drift : Workload.t

val all : Workload.t list
val find : string -> Workload.t option
