(** Seeded random structured programs.

    Generation is purely a function of the seed.  Programs always
    terminate: loops are bounded [for]s and calls only target
    earlier-generated methods (the call graph is acyclic).  Used by
    property tests to exercise numbering, instrumentation, the
    interpreter and the parser on a wide variety of CFG shapes. *)

val program :
  ?n_methods:int -> ?stmt_budget:int -> seed:int -> unit -> Ast.pdef

(** A single random method named [name], calling only [callees] (which
    must each take one parameter — generated call sites pass one
    argument).  [nparams] fixes the parameter count (random 0..2 when
    omitted). *)
val method_ :
  ?stmt_budget:int ->
  ?nparams:int ->
  seed:int ->
  callees:string list ->
  string ->
  Ast.mdef
