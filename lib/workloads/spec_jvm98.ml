open Ast

let wk name description default_size build =
  { Workload.name; description; default_size; build }

let compress =
  let build size =
    let init =
      mdef "init" ~params:[]
        [ for_ "i" (i 0) (i 4096) [ hset (v "i") (rnd 256) ]; ret (i 0) ]
    in
    let step =
      mdef "step" ~params:[ "it" ]
        [
          set "acc" (i 0);
          set "code" (i 0);
          for_ "j" (i 0) (i 256)
            [
              set "c" (h (add (v "it") (v "j")));
              set "code" (band (bxor (shl (v "code") (i 4)) (v "c")) (i 4095));
              if_
                (eq (h (v "code")) (v "c"))
                [ set "acc" (add (v "acc") (i 1)) ]
                [
                  hset (v "code") (v "c");
                  if_
                    (eq (band (v "c") (i 15)) (i 0))
                    [ set "acc" (add (v "acc") (i 2)) ]
                    [];
                ];
              if_ (gt (v "c") (i 200))
                [ set "acc" (add (v "acc") (band (v "c") (i 7))) ]
                [];
              if_ (eq (band (v "code") (i 63)) (i 17))
                [ set "acc" (sub (v "acc") (i 1)) ]
                [];
            ];
          ret (v "acc");
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          expr (call "init" []);
          set "sum" (i 0);
          for_ "it" (i 0) (i size)
            [ set "sum" (add (v "sum") (call "step" [ v "it" ])) ];
          ret (v "sum");
        ]
    in
    pdef "compress" [ main; init; step ]
  in
  wk "compress" "LZW-style kernel; hot inner loop, biased hash-hit branch" 1200
    build

let jess =
  let build size =
    let init =
      mdef "init" ~params:[]
        [ for_ "i" (i 0) (i 1024) [ hset (v "i") (rnd 65536) ]; ret (i 0) ]
    in
    let fire_a =
      mdef "fire_a" ~params:[ "f" ]
        [
          set "s" (i 0);
          for_ "k" (i 0) (i 8)
            [ set "s" (add (v "s") (band (shr (v "f") (v "k")) (i 1))) ];
          gset 1 (add (g 1) (v "s"));
          ret (v "s");
        ]
    in
    let fire_b =
      mdef "fire_b" ~params:[ "f" ]
        [
          hset (band (v "f") (i 1023)) (add (v "f") (i 1));
          gset 2 (add (g 2) (i 1));
          ret (i 2);
        ]
    in
    let fire_c =
      mdef "fire_c" ~params:[ "f" ] [ ret (band (v "f") (i 255)) ]
    in
    let match_ =
      mdef "match" ~params:[ "it" ]
        [
          set "f" (h (band (v "it") (i 1023)));
          if_ (gt (v "f") (i 32768)) [ set "f" (sub (v "f") (i 11)) ] [];
          if_ (eq (band (v "f") (i 16)) (i 0))
            [ set "f" (bxor (v "f") (i 5)) ]
            [];
          if_ (lt (band (v "f") (i 127)) (i 40))
            [ gset 4 (add (g 4) (i 1)) ]
            [];
          if_
            (eq (band (v "f") (i 3)) (i 0))
            [ ret (call "fire_a" [ v "f" ]) ]
            [
              if_
                (lt (band (v "f") (i 7)) (i 3))
                [ ret (call "fire_b" [ v "f" ]) ]
                [
                  if_
                    (eq (band (v "f") (i 1)) (i 1))
                    [ ret (call "fire_c" [ v "f" ]) ]
                    [ ret (i 0) ];
                ];
            ];
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          expr (call "init" []);
          set "sum" (i 0);
          for_ "it" (i 0)
            (i (size * 64))
            [ set "sum" (add (v "sum") (call "match" [ v "it" ])) ];
          ret (v "sum");
        ]
    in
    pdef "jess" [ main; init; fire_a; fire_b; fire_c; match_ ]
  in
  wk "jess" "rule-engine dispatch; if-chain over working memory" 1500 build

let db =
  let build size =
    let init =
      mdef "init" ~params:[]
        [ for_ "i" (i 0) (i 2048) [ hset (v "i") (mul (v "i") (i 3)) ]; ret (i 0) ]
    in
    let lookup =
      mdef "lookup" ~params:[ "key" ]
        [
          set "lo" (i 0);
          set "hi" (i 2048);
          while_
            (lt (v "lo") (v "hi"))
            [
              set "mid" (div (add (v "lo") (v "hi")) (i 2));
              if_ (eq (h (v "mid")) (v "key")) [ ret (v "mid") ] [];
              if_
                (le (h (v "mid")) (v "key"))
                [
                  set "lo" (add (v "mid") (i 1));
                  if_ (eq (band (v "mid") (i 7)) (i 0))
                    [ gset 6 (add (g 6) (i 1)) ]
                    [];
                ]
                [ set "hi" (v "mid") ];
            ];
          if_ (lt (v "lo") (i 64)) [ set "lo" (add (v "lo") (i 1)) ] [];
          ret (v "lo");
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          expr (call "init" []);
          set "sum" (i 0);
          for_ "it" (i 0)
            (i (size * 32))
            [
              set "k" (rnd 6144);
              set "sum" (add (v "sum") (call "lookup" [ v "k" ]));
            ];
          ret (v "sum");
        ]
    in
    pdef "db" [ main; init; lookup ]
  in
  wk "db" "in-memory database; binary search with near-50/50 branches" 1200
    build

let javac =
  let build size =
    let parse_factor =
      mdef "parse_factor" ~params:[ "d" ]
        [
          if_ (le (v "d") (i 0)) [ ret (i 1) ] [];
          set "r" (rnd 8);
          if_ (lt (v "r") (i 5))
            [ ret (add (v "r") (i 1)) ]
            [
              if_ (lt (v "r") (i 7))
                [ ret (call "parse_expr" [ sub (v "d") (i 1) ]) ]
                [ ret (neg (call "parse_factor" [ sub (v "d") (i 1) ])) ];
            ];
        ]
    in
    let parse_term =
      mdef "parse_term" ~params:[ "d" ]
        [
          if_ (le (v "d") (i 0)) [ ret (i 1) ] [];
          set "acc" (call "parse_factor" [ sub (v "d") (i 1) ]);
          while_
            (ne (rnd 4) (i 0))
            [
              set "acc"
                (add (v "acc") (call "parse_factor" [ sub (v "d") (i 1) ]));
            ];
          ret (v "acc");
        ]
    in
    let parse_expr =
      mdef "parse_expr" ~params:[ "d" ]
        [
          if_ (le (v "d") (i 0)) [ ret (i 1) ] [];
          set "t" (rnd 10);
          switch (v "t")
            [
              (0, [ ret (add (call "parse_term" [ sub (v "d") (i 1) ]) (i 1)) ]);
              (1, [ ret (add (call "parse_term" [ sub (v "d") (i 1) ]) (i 2)) ]);
              (2, [ ret (call "parse_term" [ sub (v "d") (i 1) ]) ]);
              ( 3,
                [
                  ret
                    (add
                       (call "parse_term" [ sub (v "d") (i 1) ])
                       (call "parse_expr" [ sub (v "d") (i 1) ]));
                ] );
            ]
            [ ret (call "parse_factor" [ sub (v "d") (i 1) ]) ];
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          set "sum" (i 0);
          for_ "it" (i 0)
            (i (size * 8))
            [ set "sum" (add (v "sum") (call "parse_expr" [ i 6 ])) ];
          ret (v "sum");
        ]
    in
    pdef "javac" [ main; parse_expr; parse_term; parse_factor ]
  in
  wk "javac" "recursive-descent front end; deep call graph, token switch" 1000
    build

let mpegaudio =
  let build size =
    let init =
      mdef "init" ~params:[]
        [ for_ "i" (i 0) (i 4096) [ hset (v "i") (rnd 1024) ]; ret (i 0) ]
    in
    let filter =
      mdef "filter" ~params:[ "f" ]
        [
          set "acc" (i 0);
          for_ "b" (i 0) (i 32)
            [
              set "s" (i 0);
              for_ "k" (i 0) (i 16)
                [
                  set "s"
                    (add (v "s")
                       (mul
                          (h
                             (band
                                (add (add (v "f") (mul (v "b") (i 16))) (v "k"))
                                (i 4095)))
                          (add (band (v "k") (i 3)) (i 1))));
                ];
              if_
                (gt (v "s") (i 16384))
                [ set "acc" (add (v "acc") (shr (v "s") (i 4))) ]
                [ set "acc" (add (v "acc") (i 1)) ];
            ];
          ret (v "acc");
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          expr (call "init" []);
          set "sum" (i 0);
          for_ "it" (i 0) (i size)
            [ set "sum" (add (v "sum") (call "filter" [ v "it" ])) ];
          ret (v "sum");
        ]
    in
    pdef "mpegaudio" [ main; init; filter ]
  in
  wk "mpegaudio" "numeric filter bank; nested predictable loops" 220 build

let mtrt =
  let build size =
    let trace =
      mdef "trace" ~params:[ "d"; "x" ]
        [
          if_ (le (v "d") (i 0)) [ ret (band (v "x") (i 255)) ] [];
          set "t" (bxor (v "x") (mul (v "d") (i 0x9E3779B1)));
          if_
            (lt (band (v "t") (i 7)) (i 5))
            [
              ret
                (add (call "trace" [ sub (v "d") (i 1); shr (v "t") (i 1) ]) (i 1));
            ]
            [
              if_
                (eq (band (v "t") (i 16)) (i 0))
                [
                  ret
                    (add
                       (call "trace"
                          [ sub (v "d") (i 1); add (mul (v "t") (i 3)) (i 1) ])
                       (call "trace" [ sub (v "d") (i 1); shr (v "t") (i 3) ]));
                ]
                [ ret (band (v "t") (i 63)) ];
            ];
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          set "sum" (i 0);
          for_ "it" (i 0)
            (i (size * 16))
            [
              set "sum"
                (add (v "sum") (call "trace" [ i 8; mul (v "it") (i 2654435761) ]));
            ];
          ret (v "sum");
        ]
    in
    pdef "mtrt" [ main; trace ]
  in
  wk "mtrt" "ray-tracer-style recursion; branchy scene walk" 900 build

let jack =
  let build size =
    let emit =
      mdef "emit" ~params:[ "x" ]
        [ gset 2 (add (g 2) (v "x")); ret (g 2) ]
    in
    let token =
      mdef "token" ~params:[ "k" ]
        [
          switch
            (band (v "k") (i 7))
            [
              (0, [ ret (call "emit" [ i 1 ]) ]);
              (1, [ ret (call "emit" [ i 2 ]) ]);
              (2, [ ret (add (call "emit" [ i 3 ]) (call "emit" [ i 4 ])) ]);
              (3, [ ret (band (v "k") (i 31)) ]);
              (4, [ ret (band (v "k") (i 31)) ]);
            ]
            [ ret (call "emit" [ band (v "k") (i 15) ]) ];
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          set "sum" (i 0);
          for_ "it" (i 0) (i size)
            [
              for_ "j" (i 0) (i 64)
                [ set "sum" (add (v "sum") (call "token" [ rnd 200 ])) ];
            ];
          ret (v "sum");
        ]
    in
    pdef "jack" [ main; token; emit ]
  in
  wk "jack" "parser generator; short-running and call-heavy" 260 build
