(** Fixed-workload SPEC JBB2000 analogue ("pseudojbb" in the paper): a
    warehouse transaction loop executing a fixed number of transactions.
    The transaction mix shifts across phases, so branch biases measured
    early become stale — the behaviour that separates continuous profiles
    from one-time profiles (paper §6.5). *)

val pseudojbb : Workload.t
