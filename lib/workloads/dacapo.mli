(** Analogues of the DaCapo benchmarks the paper runs on Jikes RVM
    (hsqldb is omitted, as in the paper):
    - [antlr]: grammar analysis, nested dispatch plus recursion;
    - [bloat]: bytecode-optimizer-style sliding-window peephole passes;
    - [fop]: formatter with distinct build and layout phases;
    - [jython]: interpreter dispatch loop — a big switch in the hottest
      loop, the classic many-paths workload;
    - [pmd]: analyzer with weakly biased predicates and an
      uninterruptible helper loop (exercises the paper's §4.3 caveat);
    - [xalan]: two-pass table transformer with phase-dependent biases. *)

val antlr : Workload.t
val bloat : Workload.t
val fop : Workload.t
val jython : Workload.t
val pmd : Workload.t
val xalan : Workload.t
