open Ast

(* Seeded adversarial workload generator.  See wgen.mli for the model.

   Generated program shape (method names fixed, bodies drawn from a
   PRNG over the structural seed):

     main  --(bursty, multi-tenant)-->  route --82%..-> work0..workN  -> leaf
                                              \--18%..-> flip ---------^
                                                          (phase arms)
     work* additionally reach:  polyK (megamorphic switch site)
                                deep  (recursion chain, base calls leaf)
                                maze  (2^diamonds-path diamond chain)

   [route]'s threshold descends as the phase global advances, [flip]'s
   per-phase arms are leaf-calling loops that never execute earlier,
   and [maze]'s entry value is keyed to the phase so each phase runs
   its own small set of the 2^diamonds paths — one phase shift thus
   produces all three triage signatures fleet diffs look for: new hot
   paths, a branch-bias shift, and a change of [leaf]'s dominant
   caller. *)

type spec = {
  seed : int;
  methods : int;
  bias : int;
  mega : int;
  depth : int;
  loops : int;
  diamonds : int;
  phases : int;
  tenants : int;
  burst : int;
  size : int;
}

let default =
  {
    seed = 1;
    methods = 3;
    bias = 85;
    mega = 4;
    depth = 3;
    loops = 2;
    diamonds = 8;
    phases = 2;
    tenants = 2;
    burst = 4;
    size = 60;
  }

type error = { axis : string; value : string; reason : string }

let error_to_string e =
  Fmt.str "gen spec: axis %s = %s rejected: %s" e.axis e.value e.reason

(* Axis table: name, getter, inclusive range.  One list drives
   validation, printing and parsing, so the three cannot drift. *)
let axes =
  [
    ("seed", (fun s -> s.seed), (fun s v -> { s with seed = v }), 0, 0x3FFFFFFF);
    ("methods", (fun s -> s.methods), (fun s v -> { s with methods = v }), 1, 8);
    ("bias", (fun s -> s.bias), (fun s v -> { s with bias = v }), 50, 99);
    ("mega", (fun s -> s.mega), (fun s v -> { s with mega = v }), 0, 8);
    ("depth", (fun s -> s.depth), (fun s v -> { s with depth = v }), 0, 16);
    ("loops", (fun s -> s.loops), (fun s v -> { s with loops = v }), 0, 4);
    ( "diamonds",
      (fun s -> s.diamonds),
      (fun s v -> { s with diamonds = v }),
      0,
      30 );
    ("phases", (fun s -> s.phases), (fun s v -> { s with phases = v }), 1, 4);
    ("tenants", (fun s -> s.tenants), (fun s v -> { s with tenants = v }), 1, 8);
    ("burst", (fun s -> s.burst), (fun s v -> { s with burst = v }), 1, 32);
    ("size", (fun s -> s.size), (fun s v -> { s with size = v }), 1, 1_000_000);
  ]

let validate spec =
  let rec go = function
    | [] -> Ok ()
    | (axis, get, _, lo, hi) :: rest ->
        let v = get spec in
        if v < lo || v > hi then
          Error
            {
              axis;
              value = string_of_int v;
              reason = Fmt.str "out of range [%d, %d]" lo hi;
            }
        else go rest
  in
  go axes

let prefix = "gen:"
let is_spec name = String.length name >= 4 && String.sub name 0 4 = prefix

let print spec =
  prefix
  ^ String.concat ","
      (List.map (fun (k, get, _, _, _) -> Fmt.str "%s=%d" k (get spec)) axes)

let parse name =
  if not (is_spec name) then
    Error { axis = "spec"; value = name; reason = "expected a gen: prefix" }
  else
    let body = String.sub name 4 (String.length name - 4) in
    let fields =
      if body = "" then [] else String.split_on_char ',' body
    in
    let rec go seen spec = function
      | [] -> ( match validate spec with Ok () -> Ok spec | Error e -> Error e)
      | field :: rest -> (
          match String.index_opt field '=' with
          | None ->
              Error { axis = "spec"; value = field; reason = "expected key=int" }
          | Some i -> (
              let k = String.sub field 0 i in
              let vs =
                String.sub field (i + 1) (String.length field - i - 1)
              in
              match List.find_opt (fun (k', _, _, _, _) -> k' = k) axes with
              | None ->
                  Error { axis = k; value = vs; reason = "unknown axis" }
              | Some (_, _, set, _, _) -> (
                  if List.mem k seen then
                    Error { axis = k; value = vs; reason = "duplicate axis" }
                  else
                    match int_of_string_opt vs with
                    | None ->
                        Error { axis = k; value = vs; reason = "not an integer" }
                    | Some v -> go (k :: seen) (set spec v) rest)))
    in
    go [] default fields

(* ------------------------- traffic schedule ------------------------ *)

let schedule spec ~windows =
  List.init (max 0 windows) (fun w ->
      if windows <= 1 then 0 else min (spec.phases - 1) (w * spec.phases / windows))

let shifts spec ~windows =
  let sched = Array.of_list (schedule spec ~windows) in
  List.filter
    (fun w -> w > 0 && sched.(w) <> sched.(w - 1))
    (List.init (max 0 windows) (fun w -> w))

(* --------------------------- program build ------------------------- *)

let phase = g Phased.phase_global

let build spec size =
  let p = Prng.create ~seed:((spec.seed * 2) + 1) in
  (* inclusive random constant — every structural choice routes through
     the spec-seeded PRNG so the build is a pure function of the spec *)
  let c lo hi = lo + Prng.below p (hi - lo + 1) in
  let odd lo hi = (c lo hi * 2) + 1 in
  let leaf =
    let k1 = odd 1 7 and k2 = c 2 4 and k3 = c 7 31 in
    mdef "leaf" ~params:[ "x" ]
      [
        set "t" (band (mul (v "x") (i k1)) (i 255));
        for_ "k" (i 0) (i k2)
          [ set "t" (add (v "t") (band (shr (v "x") (v "k")) (i k3))) ];
        ret (v "t");
      ]
  in
  let deep =
    if spec.depth = 0 then []
    else
      let kr = c 1 63 in
      [
        mdef "deep" ~params:[ "x"; "d" ]
          [
            if_
              (gt (v "d") (i 0))
              [
                ret
                  (add
                     (call "deep" [ bxor (v "x") (i kr); sub (v "d") (i 1) ])
                     (i 1));
              ]
              [ ret (call "leaf" [ v "x" ]) ];
          ];
      ]
  in
  let maze =
    if spec.diamonds = 0 then []
    else
      let diamond j =
        if_
          (eq (band (shr (v "a") (i (j mod 24))) (i 1)) (i 0))
          [ set "a" (add (v "a") (i (c 1 127))) ]
          [ set "a" (bxor (v "a") (i (c 1 127))) ]
      in
      (* the entry value keeps only 4 input bits and XORs in a
         phase-keyed odd constant: each phase concentrates the dynamic
         traffic on its own small set of the 2^diamonds static paths,
         so a phase shift retires the hot maze paths wholesale (the
         static path space — and the Too_many_paths boundary — is
         untouched) *)
      let mix = odd 0x80 0x3FF in
      [
        mdef "maze" ~params:[ "x" ]
          ((set "a" (bxor (band (v "x") (i 15)) (mul phase (i mix)))
           :: List.init spec.diamonds diamond)
          @ [ ret (v "a") ]);
      ]
  in
  let poly =
    if spec.mega < 2 then []
    else
      List.init spec.mega (fun j ->
          let k = c 1 63 in
          let body =
            match j mod 4 with
            | 0 -> add (v "x") (i k)
            | 1 -> bxor (v "x") (i k)
            | 2 -> band (mul (v "x") (i ((k * 2) + 1))) (i 1023)
            | _ -> sub (v "x") (i k)
          in
          mdef (Fmt.str "poly%d" j) ~params:[ "x" ] [ ret body ])
  in
  (* feature sites are spread round-robin across workers *)
  let worker wi =
    let has_mega = spec.mega >= 2 && wi = 0 mod spec.methods in
    let has_rec = spec.depth > 0 && wi = 1 mod spec.methods in
    let has_maze = spec.diamonds > 0 && wi = 2 mod spec.methods in
    let cold_c = c 1 255 in
    let biased =
      if_
        (lt (rnd 100) (i spec.bias))
        [ set "t" (add (v "t") (call "leaf" [ v "t" ])) ]
        [ set "t" (bxor (v "t") (i cold_c)) ]
    in
    let features =
      (if has_mega then
         [
           switch
             (rem (band (v "t") (i 1023)) (i spec.mega))
             (List.init spec.mega (fun j ->
                  ( j,
                    [
                      set "t"
                        (bxor (v "t") (call (Fmt.str "poly%d" j) [ v "t" ]));
                    ] )))
             [ set "t" (add (v "t") (i 1)) ];
         ]
       else [])
      @ (if has_rec then
           [
             set "t"
               (band
                  (add (v "t") (call "deep" [ v "t"; i spec.depth ]))
                  (i 65535));
           ]
         else [])
      @
      if has_maze then [ set "t" (bxor (v "t") (call "maze" [ v "t" ])) ]
      else []
    in
    let innermost = biased :: features in
    let rec nest l body =
      if l = 0 then body
      else
        let bound = if spec.loops >= 3 then c 2 3 else c 3 4 in
        nest (l - 1) [ for_ (Fmt.str "l%d" (l - 1)) (i 0) (i bound) body ]
    in
    mdef (Fmt.str "work%d" wi) ~params:[ "r" ]
      ((set "t" (v "r") :: nest spec.loops innermost) @ [ ret (v "t") ])
  in
  let workers = List.init spec.methods worker in
  let flip =
    (* per-phase arms: leaf-calling loops of growing length whose paths
       never execute in earlier phases; the default (phase-0) arm is
       cheap arithmetic, hot enough at the minority share to be
       opt-compiled from a phase-0 warmup *)
    let arm ph =
      [
        for_ "j" (i 0)
          (i (8 + (2 * ph)))
          [
            set "t"
              (bxor (v "t") (call "leaf" [ add (v "t") (mul (v "j") (i ph)) ]));
          ];
      ]
    in
    let base =
      [
        for_ "j" (i 0) (i 5)
          [
            set "t" (add (v "t") (band (mul (v "t") (i 5)) (i 63)));
            if_ (eq (band (v "t") (i 3)) (i 0)) [ set "t" (bxor (v "t") (v "j")) ] [];
          ];
      ]
    in
    let dispatch =
      if spec.phases = 1 then base
      else
        [
          switch phase
            (List.init (spec.phases - 1) (fun k -> (k + 1, arm (k + 1))))
            base;
        ]
    in
    mdef "flip" ~params:[ "r" ] ((set "t" (v "r") :: dispatch) @ [ ret (v "t") ])
  in
  let route =
    (* the dispatch split: phase 0 sends ~82% of requests to the worker
       pool and the rest to [flip]; each phase advance lowers the
       threshold so flip's share grows, and each tenant skews it by 2 *)
    let step = if spec.phases = 1 then 0 else 60 / (spec.phases - 1) in
    mdef "route" ~params:[ "r"; "ten" ]
      [
        if_
          (lt (v "r")
             (sub (i 82) (add (mul phase (i step)) (mul (v "ten") (i 2)))))
          [
            switch
              (rem (v "r") (i spec.methods))
              (List.init spec.methods (fun j ->
                   (j, [ ret (call (Fmt.str "work%d" j) [ v "r" ]) ])))
              [ ret (call "work0" [ v "r" ]) ];
          ]
          [ ret (call "flip" [ v "r" ]) ];
      ]
  in
  let main =
    mdef "main" ~params:[]
      [
        set "sum" (i 0);
        for_ "it" (i 0) (i size)
          [
            (* one burst = [burst] requests from a single tenant *)
            set "ten" (rnd spec.tenants);
            for_ "b" (i 0) (i spec.burst)
              [
                set "sum"
                  (bxor (v "sum") (call "route" [ rnd 100; v "ten" ]));
              ];
          ];
        ret (v "sum");
      ]
  in
  pdef (print spec)
    ((main :: route :: flip :: workers) @ poly @ maze @ deep @ [ leaf ])

let describe spec =
  Fmt.str
    "generated: %d workers, bias %d%%, mega %d, recursion %d, loop nest %d, \
     %d diamonds (2^%d paths), %d phases x %d tenants, burst %d"
    spec.methods spec.bias spec.mega spec.depth spec.loops spec.diamonds
    spec.diamonds spec.phases spec.tenants spec.burst

let workload spec =
  (match validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg (error_to_string e));
  {
    Workload.name = print spec;
    description = describe spec;
    default_size = spec.size;
    build = build spec;
  }

let resolve name =
  match parse name with Ok spec -> Ok (workload spec) | Error e -> Error e

(* ------------------------------ corpus ----------------------------- *)

let corpus ?(n = 20) ~seed () =
  let p = Prng.create ~seed:((seed * 4) + 3) in
  let c lo hi = lo + Prng.below p (hi - lo + 1) in
  List.init n (fun k ->
      {
        seed = (seed * 131) + k;
        methods = c 1 4;
        bias = c 60 95;
        mega = (match c 0 4 with 1 -> 0 | m -> m);
        depth = c 0 6;
        loops = c 0 3;
        diamonds = c 0 12;
        phases = c 1 3;
        tenants = c 1 4;
        burst = c 1 8;
        size = c 20 40;
      })
