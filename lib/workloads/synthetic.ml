open Ast

type gen = {
  prng : Prng.t;
  mutable budget : int;
  vars : string array;
  callees : string array;
}

let pick g arr = arr.(Prng.below g.prng (Array.length arr))

let rec gen_expr g depth =
  let leaf () =
    match Prng.below g.prng 5 with
    | 0 -> i (Prng.below g.prng 100)
    | 1 | 2 -> v (pick g g.vars)
    | 3 -> rnd (1 + Prng.below g.prng 16)
    | _ -> h (v (pick g g.vars))
  in
  if depth <= 0 then leaf ()
  else
    match Prng.below g.prng 8 with
    | 0 | 1 -> leaf ()
    | 2 -> add (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 3 -> sub (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 4 -> band (gen_expr g (depth - 1)) (i (1 + Prng.below g.prng 255))
    | 5 -> mul (gen_expr g (depth - 1)) (i (1 + Prng.below g.prng 7))
    | 6 when Array.length g.callees > 0 ->
        let callee = pick g g.callees in
        call callee [ gen_expr g (depth - 1) ]
    | _ -> bxor (gen_expr g (depth - 1)) (gen_expr g (depth - 1))

let gen_cond g =
  let rel = [| lt; le; gt; ge; eq; ne |] in
  (pick g rel) (gen_expr g 1) (gen_expr g 1)

let rec gen_stmt g depth =
  g.budget <- g.budget - 1;
  if depth <= 0 || g.budget <= 0 then set (pick g g.vars) (gen_expr g 1)
  else
    match Prng.below g.prng 12 with
    | 0 | 1 | 2 -> set (pick g g.vars) (gen_expr g 2)
    | 3 -> hset (gen_expr g 1) (gen_expr g 1)
    | 4 -> gset (Prng.below g.prng 8) (gen_expr g 1)
    | 5 | 6 ->
        if_ (gen_cond g) (gen_stmts g (depth - 1)) (gen_stmts g (depth - 1))
    | 7 ->
        (* bounded loop over a fresh counter *)
        let cnt = Fmt.str "c%d" (Prng.below g.prng 1000) in
        for_ cnt (i 0) (i (1 + Prng.below g.prng 8)) (gen_stmts g (depth - 1))
    | 8 ->
        switch (gen_expr g 1)
          (List.init
             (1 + Prng.below g.prng 3)
             (fun k -> (k, gen_stmts g (depth - 1))))
          (gen_stmts g (depth - 1))
    | 9 ->
        let cnt = Fmt.str "d%d" (Prng.below g.prng 1000) in
        for_ cnt (i 0)
          (i (1 + Prng.below g.prng 5))
          (gen_stmts g (depth - 1)
          @ [ if_ (gen_cond g) [ continue_ ] []; set (pick g g.vars) (gen_expr g 1) ])
    | 10 ->
        let cnt = Fmt.str "e%d" (Prng.below g.prng 1000) in
        for_ cnt (i 0)
          (i (2 + Prng.below g.prng 6))
          (gen_stmts g (depth - 1) @ [ if_ (gen_cond g) [ break_ ] [] ])
    | _ ->
        (* expression statements must be calls in the concrete syntax *)
        if Array.length g.callees > 0 then
          expr (call (pick g g.callees) [ gen_expr g 1 ])
        else set (pick g g.vars) (gen_expr g 2)

and gen_stmts g depth =
  let n = 1 + Prng.below g.prng 3 in
  List.init n (fun _ -> gen_stmt g depth)

let method_ ?(stmt_budget = 40) ?nparams ~seed ~callees name =
  let prng = Prng.create ~seed in
  (* generated call sites always pass one argument *)
  let nparams = match nparams with Some n -> n | None -> Prng.below prng 3 in
  let params = List.init nparams (fun k -> Fmt.str "p%d" k) in
  let vars = Array.of_list (("x" :: "y" :: "z" :: params) @ [ "w" ]) in
  let g = { prng; budget = stmt_budget; vars; callees = Array.of_list callees } in
  let body = gen_stmts g 3 @ [ ret (gen_expr g 1) ] in
  mdef name ~params body

let program ?(n_methods = 5) ?(stmt_budget = 40) ~seed () =
  let prng = Prng.create ~seed in
  let rec defs k callees acc =
    if k = 0 then acc
    else begin
      let name = Fmt.str "m%d" k in
      let m =
        method_ ~stmt_budget ~nparams:1 ~seed:(Prng.next prng) ~callees name
      in
      defs (k - 1) (name :: callees) (m :: acc)
    end
  in
  let methods = defs (n_methods - 1) [] [] in
  let callees = List.map (fun (m : mdef) -> m.mname) methods in
  let main_seed = Prng.next prng in
  let main = method_ ~stmt_budget ~nparams:0 ~seed:main_seed ~callees "main" in
  pdef (Fmt.str "synthetic_%d" (abs seed)) (main :: methods)
