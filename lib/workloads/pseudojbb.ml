open Ast

let pseudojbb =
  let build size =
    let order_entry =
      mdef "order_entry" ~params:[ "w" ]
        [
          set "s" (i 0);
          for_ "k" (i 0) (i 12)
            [
              set "item" (h (band (add (v "w") (v "k")) (i 4095)));
              if_ (gt (v "item") (i 5000))
                [ set "s" (add (v "s") (shr (v "item") (i 4))) ]
                [ set "s" (add (v "s") (v "item")) ];
              if_ (eq (band (v "item") (i 15)) (i 3))
                [ gset 4 (add (g 4) (i 1)) ]
                [];
              hset (band (add (v "w") (v "k")) (i 4095)) (add (v "s") (i 1));
            ];
          ret (v "s");
        ]
    in
    let payment =
      mdef "payment" ~params:[ "w" ]
        [
          gset 3 (add (g 3) (v "w"));
          if_ (gt (g 3) (i 1000000)) [ gset 3 (i 0) ] [];
          ret (band (g 3) (i 255));
        ]
    in
    let status =
      mdef "status" ~params:[ "w" ] [ ret (band (v "w") (i 63)) ]
    in
    let txn =
      mdef "txn" ~params:[ "kind"; "w" ]
        [
          (* the mix threshold moves with the phase in g[5] *)
          if_ (lt (v "kind") (add (i 25) (mul (g 5) (i 18))))
            [ ret (call "order_entry" [ v "w" ]) ]
            [
              if_ (lt (v "kind") (add (i 70) (mul (g 5) (i 6))))
                [ ret (call "payment" [ v "w" ]) ]
                [ ret (call "status" [ v "w" ]) ];
            ];
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          set "sum" (i 0);
          for_ "phase" (i 0) (i 4)
            [
              gset 5 (v "phase");
              for_ "t" (i 0)
                (i (size * 8))
                [
                  set "sum"
                    (add (v "sum") (call "txn" [ rnd 100; band (v "t") (i 4095) ]));
                ];
            ];
          ret (v "sum");
        ]
    in
    pdef "pseudojbb" [ main; txn; order_entry; payment; status ]
  in
  {
    Workload.name = "pseudojbb";
    description = "warehouse transactions; mix shifts across phases";
    default_size = 900;
    build;
  }
