type t = {
  name : string;
  description : string;
  default_size : int;
  build : int -> Ast.pdef;
}

let program ?size t =
  let size = Option.value ~default:t.default_size size in
  Compile.pdef (t.build size)
