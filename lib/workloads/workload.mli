(** A named synthetic benchmark: an AST program parameterized by size.

    The suite stands in for the paper's SPEC JVM98 / pseudojbb / DaCapo
    programs.  Each workload reproduces a control-flow character of its
    namesake — loop-dominated kernels, branchy parsers, call-heavy OO
    code, phased transaction mixes — because those are the properties
    path/edge profile accuracy and instrumentation overhead depend on. *)

type t = {
  name : string;
  description : string;
  default_size : int;  (** scales the main loop's trip count *)
  build : int -> Ast.pdef;
}

(** Compile at [size] (default [default_size]).
    @raise Compile.Error or [Program.Link_error] only if the workload
    definition itself is broken. *)
val program : ?size:int -> t -> Program.t
