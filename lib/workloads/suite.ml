let all =
  [
    Spec_jvm98.compress;
    Spec_jvm98.jess;
    Spec_jvm98.db;
    Spec_jvm98.javac;
    Spec_jvm98.mpegaudio;
    Spec_jvm98.mtrt;
    Spec_jvm98.jack;
    Pseudojbb.pseudojbb;
    Dacapo.antlr;
    Dacapo.bloat;
    Dacapo.fop;
    Dacapo.jython;
    Dacapo.pmd;
    Dacapo.xalan;
  ]

let find name = List.find (fun (w : Workload.t) -> w.name = name) all
let names = List.map (fun (w : Workload.t) -> w.name) all

let resolve name =
  match List.find_opt (fun (w : Workload.t) -> w.name = name) all with
  | Some w -> Ok w
  | None -> (
      match Phased.find name with
      | Some w -> Ok w
      | None ->
          if Wgen.is_spec name then
            Result.map_error Wgen.error_to_string (Wgen.resolve name)
          else
            Error
              (Fmt.str
                 "unknown workload %S (expected one of %s, a phased workload \
                  %s, or a gen: spec)"
                 name
                 (String.concat ", " names)
                 (String.concat ", "
                    (List.map (fun (w : Workload.t) -> w.name) Phased.all))))
