let all =
  [
    Spec_jvm98.compress;
    Spec_jvm98.jess;
    Spec_jvm98.db;
    Spec_jvm98.javac;
    Spec_jvm98.mpegaudio;
    Spec_jvm98.mtrt;
    Spec_jvm98.jack;
    Pseudojbb.pseudojbb;
    Dacapo.antlr;
    Dacapo.bloat;
    Dacapo.fop;
    Dacapo.jython;
    Dacapo.pmd;
    Dacapo.xalan;
  ]

let find name = List.find (fun (w : Workload.t) -> w.name = name) all
let names = List.map (fun (w : Workload.t) -> w.name) all
