open Ast

let wk name description default_size build =
  { Workload.name; description; default_size; build }

let antlr =
  let build size =
    let walk =
      mdef "walk" ~params:[ "d"; "sym" ]
        [
          if_ (le (v "d") (i 0)) [ ret (i 1) ] [];
          switch
            (band (v "sym") (i 3))
            [
              (0, [ ret (add (call "walk" [ sub (v "d") (i 1); rnd 64 ]) (i 1)) ]);
              ( 1,
                [
                  set "a" (call "walk" [ sub (v "d") (i 1); rnd 64 ]);
                  set "b" (call "walk" [ sub (v "d") (i 1); rnd 64 ]);
                  ret (add (v "a") (v "b"));
                ] );
              (2, [ ret (band (v "sym") (i 31)) ]);
            ]
            [ ret (i 0) ];
        ]
    in
    let classify =
      mdef "classify" ~params:[ "c" ]
        [
          if_ (lt (v "c") (i 26)) [ ret (i 0) ] [];
          if_ (lt (v "c") (i 52)) [ ret (i 1) ] [];
          if_ (lt (v "c") (i 62)) [ ret (i 2) ] [];
          ret (i 3);
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          set "sum" (i 0);
          for_ "it" (i 0)
            (i (size * 4))
            [
              set "sum" (add (v "sum") (call "walk" [ i 5; rnd 64 ]));
              for_ "j" (i 0) (i 32)
                [ set "sum" (add (v "sum") (call "classify" [ rnd 80 ])) ];
            ];
          ret (v "sum");
        ]
    in
    pdef "antlr" [ main; walk; classify ]
  in
  wk "antlr" "grammar analysis; nested dispatch and recursion" 700 build

let bloat =
  let build size =
    let init =
      mdef "init" ~params:[]
        [ for_ "i" (i 0) (i 4096) [ hset (v "i") (rnd 32) ]; ret (i 0) ]
    in
    let peephole =
      mdef "peephole" ~params:[ "base" ]
        [
          set "acc" (i 0);
          for_ "j" (i 0) (i 128)
            [
              set "a" (h (add (v "base") (v "j")));
              set "b" (h (add (v "base") (add (v "j") (i 1))));
              (* dead store: store then store *)
              if_
                (band (eq (v "a") (i 1)) (eq (v "b") (i 1)))
                [ set "acc" (add (v "acc") (i 3)) ]
                [
                  (* push-pop pair *)
                  if_
                    (band (eq (v "a") (i 2)) (eq (v "b") (i 3)))
                    [ set "acc" (add (v "acc") (i 2)) ]
                    [
                      if_
                        (gt (v "a") (v "b"))
                        [ set "acc" (add (v "acc") (i 1)) ]
                        [];
                    ];
                ];
              if_ (eq (band (bxor (v "a") (v "b")) (i 1)) (i 0))
                [ set "acc" (add (v "acc") (i 1)) ]
                [];
            ];
          ret (v "acc");
        ]
    in
    let renumber =
      mdef "renumber" ~params:[ "base" ]
        [
          for_ "j" (i 0) (i 64)
            [
              hset
                (add (v "base") (v "j"))
                (band (add (h (add (v "base") (v "j"))) (i 1)) (i 31));
            ];
          ret (i 0);
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          expr (call "init" []);
          set "sum" (i 0);
          for_ "it" (i 0)
            (i (size * 4))
            [
              set "base" (band (mul (v "it") (i 61)) (i 2047));
              set "sum" (add (v "sum") (call "peephole" [ v "base" ]));
              if_
                (eq (band (v "it") (i 7)) (i 0))
                [ expr (call "renumber" [ v "base" ]) ]
                [];
            ];
          ret (v "sum");
        ]
    in
    pdef "bloat" [ main; init; peephole; renumber ]
  in
  wk "bloat" "bytecode-optimizer passes; sliding-window peepholes" 450 build

let fop =
  let build size =
    let build_tree =
      mdef "build_tree" ~params:[ "n" ]
        [
          for_ "j" (i 0) (i 256)
            [
              hset
                (band (add (mul (v "n") (i 256)) (v "j")) (i 4095))
                (add (rnd 40) (i 1));
            ];
          ret (i 0);
        ]
    in
    let layout =
      mdef "layout" ~params:[ "n" ]
        [
          set "line" (i 0);
          set "acc" (i 0);
          for_ "j" (i 0) (i 256)
            [
              set "w" (h (band (add (mul (v "n") (i 256)) (v "j")) (i 4095)));
              if_ (gt (v "w") (i 30)) [ set "w" (sub (v "w") (i 3)) ] [];
              if_
                (gt (add (v "line") (v "w")) (i 72))
                [ set "acc" (add (v "acc") (i 1)); set "line" (v "w") ]
                [
                  set "line" (add (v "line") (v "w"));
                  if_ (eq (band (v "w") (i 3)) (i 0))
                    [ set "acc" (add (v "acc") (i 1)) ]
                    [];
                ];
            ];
          ret (v "acc");
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          set "sum" (i 0);
          (* phase 1: build *)
          for_ "n" (i 0) (i (size * 2)) [ expr (call "build_tree" [ v "n" ]) ];
          (* phase 2: layout, different branch mix *)
          for_ "n" (i 0)
            (i (size * 2))
            [ set "sum" (add (v "sum") (call "layout" [ v "n" ])) ];
          ret (v "sum");
        ]
    in
    pdef "fop" [ main; build_tree; layout ]
  in
  wk "fop" "formatter; distinct build and layout phases" 300 build

let jython =
  let build size =
    let init =
      (* opcode stream skewed toward loads/adds, as real interpreters see *)
      mdef "init" ~params:[]
        [
          for_ "p" (i 0) (i 4096)
            [
              set "r" (rnd 16);
              if_ (lt (v "r") (i 6)) [ hset (v "p") (i 0) ]
                [
                  if_ (lt (v "r") (i 10)) [ hset (v "p") (i 1) ]
                    [
                      if_ (lt (v "r") (i 12)) [ hset (v "p") (i 2) ]
                        [ hset (v "p") (band (v "r") (i 7)) ];
                    ];
                ];
            ];
          ret (i 0);
        ]
    in
    let dispatch =
      [
        switch (h (v "pc"))
          [
            (0, [ set "top" (add (v "top") (i 1)) ]);
            (1, [ set "acc" (add (v "acc") (v "top")) ]);
            (2, [ set "top" (mul (v "top") (i 2)) ]);
            (3, [ set "top" (sub (v "top") (v "acc")) ]);
            (4, [ set "acc" (bxor (v "acc") (v "top")) ]);
            ( 5,
              [
                if_ (gt (v "top") (i 100))
                  [ set "top" (i 0) ]
                  [ set "top" (add (v "top") (i 7)) ];
              ] );
            (6, [ set "acc" (band (v "acc") (i 65535)) ]);
          ]
          [ set "top" (shr (v "top") (i 1)) ];
        set "pc" (band (add (v "pc") (i 1)) (i 4095));
      ]
    in
    let exec =
      mdef "exec" ~params:[ "pc0"; "steps" ]
        [
          set "acc" (i 0);
          set "top" (i 0);
          set "pc" (v "pc0");
          for_ "s" (i 0) (v "steps") (List.concat [ dispatch; dispatch; dispatch; dispatch ]);
          ret (add (v "acc") (v "top"));
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          expr (call "init" []);
          set "sum" (i 0);
          for_ "it" (i 0) (i size)
            [
              set "sum"
                (add (v "sum")
                   (call "exec" [ band (mul (v "it") (i 97)) (i 4095); i 40 ]));
            ];
          ret (v "sum");
        ]
    in
    pdef "jython" [ main; init; exec ]
  in
  wk "jython" "interpreter dispatch loop; many distinct hot paths" 700 build

let pmd =
  let build size =
    let hash =
      (* uninterruptible helper with a loop: its header has no yieldpoint,
         so paths ending there are lost (paper §4.3) *)
      mdef ~uninterruptible:true "hash" ~params:[ "x" ]
        [
          set "a" (v "x");
          for_ "k" (i 0) (i 4)
            [
              set "a" (bxor (v "a") (shl (v "a") (i 5)));
              set "a" (band (add (v "a") (i 12345)) (i 1048575));
            ];
          ret (v "a");
        ]
    in
    let check =
      mdef "check" ~params:[ "node" ]
        [
          set "hv" (call "hash" [ v "node" ]);
          set "viol" (i 0);
          if_ (eq (band (v "hv") (i 1)) (i 0))
            [ set "viol" (add (v "viol") (i 1)) ]
            [];
          if_ (lt (band (v "hv") (i 255)) (i 128))
            [ set "viol" (add (v "viol") (i 1)) ]
            [];
          if_ (eq (rem (v "hv") (i 3)) (i 0))
            [ set "viol" (add (v "viol") (call "hash" [ v "viol" ])) ]
            [];
          ret (v "viol");
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          set "sum" (i 0);
          for_ "it" (i 0)
            (i (size * 48))
            [ set "sum" (add (v "sum") (call "check" [ v "it" ])) ];
          ret (v "sum");
        ]
    in
    pdef "pmd" [ main; check; hash ]
  in
  wk "pmd" "analyzer; weak-bias predicates, uninterruptible helper" 700 build

let xalan =
  let build size =
    let init =
      mdef "init" ~params:[]
        [ for_ "i" (i 0) (i 4096) [ hset (v "i") (rnd 128) ]; ret (i 0) ]
    in
    let transform =
      mdef "transform" ~params:[ "base"; "mode" ]
        [
          set "acc" (i 0);
          for_ "j" (i 0) (i 96)
            [
              set "c" (h (band (add (v "base") (v "j")) (i 4095)));
              if_ (eq (band (v "c") (i 31)) (i 7))
                [ set "c" (add (v "c") (i 2)) ]
                [];
              (* the hot direction flips with the pass *)
              if_ (eq (v "mode") (i 0))
                [
                  if_ (lt (v "c") (i 96))
                    [ set "acc" (add (v "acc") (v "c")) ]
                    [ set "acc" (add (v "acc") (i 1)) ];
                ]
                [
                  if_ (lt (v "c") (i 32))
                    [ set "acc" (add (v "acc") (v "c")) ]
                    [ set "acc" (sub (v "acc") (i 1)) ];
                ];
            ];
          ret (v "acc");
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          expr (call "init" []);
          set "sum" (i 0);
          (* pass 1 *)
          for_ "it" (i 0)
            (i (size * 2))
            [
              set "sum"
                (add (v "sum")
                   (call "transform" [ mul (v "it") (i 89); i 0 ]));
            ];
          (* pass 2: flipped hot directions *)
          for_ "it" (i 0)
            (i (size * 2))
            [
              set "sum"
                (add (v "sum")
                   (call "transform" [ mul (v "it") (i 53); i 1 ]));
            ];
          ret (v "sum");
        ]
    in
    pdef "xalan" [ main; init; transform ]
  in
  wk "xalan" "two-pass transformer; phase-dependent branch bias" 400 build
