(** Analogues of the SPEC JVM98 benchmarks used in the paper.

    Each mirrors the control-flow character of its namesake:
    - [compress]: loop-dominated LZW-style kernel, strongly biased
      hash-hit branch;
    - [jess]: rule-engine dispatch, medium-bias if-chains over working
      memory;
    - [db]: in-memory database dominated by binary search — near 50/50
      branches that are hard for bias prediction;
    - [javac]: recursive-descent compiler front end, deep call graph,
      token switches;
    - [mpegaudio]: numeric filter-bank kernel, nested predictable loops;
    - [mtrt]: ray-tracer-style recursive scene walk, branchy recursion;
    - [jack]: parser generator, short-running and call-heavy (the
      compile-overhead stress of paper §6.2). *)

val compress : Workload.t
val jess : Workload.t
val db : Workload.t
val javac : Workload.t
val mpegaudio : Workload.t
val mtrt : Workload.t
val jack : Workload.t
