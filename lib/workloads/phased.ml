open Ast

(* A phase-shifting workload for fleet mode: traffic whose hot paths
   drift over (virtual) time, which the static suite cannot model.

   Global [phase_global] is the phase knob.  The fleet collector flips
   it mid-run (the program never writes it, so a steady cohort stays in
   phase 0 forever):

   - phase 0: [dispatch] sends ~80% of requests to [worker_a] (a
     leaf-calling loop — [leaf]'s heaviest DCG caller) and ~20% to
     [worker_b], which takes its cheap arithmetic arm;
   - phase 1: the dispatch split flips to ~20/80 and [worker_b] takes
     its other arm — a longer, leaf-calling loop whose paths were never
     executed in phase 0.

   So a phase shift injects all three regression signatures the triage
   rules look for: brand-new hot paths (worker_b's phase-1 arm), a
   large bias shift on dispatch's and worker_b's branches, and a change
   of leaf's dominant caller (worker_a → worker_b).  Phase 0 still
   sends enough traffic through worker_b that every method is warm
   enough to be opt-compiled — and therefore PEP-instrumented — when
   the replay advice is derived from a phase-0 warmup. *)

let phase_global = 0

let drift =
  let build size =
    let leaf =
      mdef "leaf" ~params:[ "x" ]
        [
          set "t" (band (mul (v "x") (i 7)) (i 255));
          for_ "k" (i 0) (i 3)
            [ set "t" (add (v "t") (band (shr (v "x") (v "k")) (i 15))) ];
          ret (v "t");
        ]
    in
    let worker_a =
      mdef "worker_a" ~params:[ "r" ]
        [
          set "t" (v "r");
          for_ "j" (i 0) (i 6)
            [
              if_
                (eq (band (v "t") (i 1)) (i 1))
                [ set "t" (add (v "t") (call "leaf" [ v "t" ])) ]
                [ set "t" (bxor (v "t") (add (mul (v "j") (i 3)) (i 1))) ];
            ];
          ret (v "t");
        ]
    in
    let worker_b =
      mdef "worker_b" ~params:[ "r" ]
        [
          set "t" (v "r");
          if_
            (gt (g phase_global) (i 0))
            [
              (* phase-1 arm: paths that never run in phase 0, every
                 iteration calling leaf *)
              for_ "j" (i 0) (i 10)
                [ set "t" (bxor (v "t") (call "leaf" [ add (v "t") (v "j") ])) ];
            ]
            [
              (* phase-0 arm: moderate arithmetic — cheap, but hot
                 enough at ~20% of traffic to get opt-compiled *)
              for_ "j" (i 0) (i 5)
                [
                  set "t" (add (v "t") (band (mul (v "t") (i 5)) (i 63)));
                  if_
                    (eq (band (v "t") (i 3)) (i 0))
                    [ set "t" (bxor (v "t") (v "j")) ]
                    [];
                ];
            ];
          ret (v "t");
        ]
    in
    let dispatch =
      mdef "dispatch" ~params:[ "r" ]
        [
          (* threshold 80 in phase 0, 20 in phase 1 *)
          if_
            (lt (v "r") (sub (i 80) (mul (g phase_global) (i 60))))
            [ ret (call "worker_a" [ v "r" ]) ]
            [ ret (call "worker_b" [ v "r" ]) ];
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          set "sum" (i 0);
          for_ "it" (i 0)
            (i (size * 32))
            [ set "sum" (bxor (v "sum") (call "dispatch" [ rnd 100 ])) ];
          ret (v "sum");
        ]
    in
    pdef "drift" [ main; dispatch; worker_a; worker_b; leaf ]
  in
  {
    Workload.name = "drift";
    description =
      "phase-shifting request mix; hot paths, branch biases and leaf's \
       dominant caller all flip when the fleet collector advances the phase \
       global";
    default_size = 400;
    build;
  }

let all = [ drift ]
let find name = List.find_opt (fun (w : Workload.t) -> w.name = name) all
