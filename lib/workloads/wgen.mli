(** Seeded adversarial workload generator with a streaming traffic
    model (ROADMAP "scenario diversity").

    A {!spec} is a point in a space of tunable feature axes — branch
    bias, megamorphic call sites, recursion depth, loop nests,
    path-explosion diamond chains — composed under a traffic model of
    bursty arrivals from a multi-tenant request mix whose hot paths
    migrate across scheduled phases.  [workload spec] builds a
    {!Workload.t} whose program is a pure function of the spec: the
    same spec always yields byte-identical bytecode, and the request
    stream is drawn from the machine PRNG, so runs are deterministic
    per seed like every other workload.

    Phases reuse the fleet convention: the program {e reads}
    [Phased.phase_global] and never writes it, so a harness (fleet
    collector, {!Exp_drift}) advances phases externally between
    windows.  A spec with [phases = 1] is its own no-drift twin — the
    structure is identical, the shift arms just never execute.

    Specs have a canonical string form ([print]/[parse] are exact
    inverses) used as the workload {e name}, so generated workloads are
    first-class in every registry keyed by name: [Suite.resolve], the
    run cache, the fleet store and the CLI all accept a ["gen:…"]
    string wherever a workload name goes. *)

type spec = {
  seed : int;  (** structural PRNG seed (program shape, constants) *)
  methods : int;  (** worker methods the dispatcher routes across, 1-8 *)
  bias : int;  (** hot-arm probability of biased branches, percent, 50-99 *)
  mega : int;  (** megamorphic fan-out (distinct callees at one site), 0-8 *)
  depth : int;  (** recursion depth of the [deep] call chain, 0-16 *)
  loops : int;  (** loop-nest depth inside workers, 0-4 *)
  diamonds : int;
      (** length of the sequential if-diamond chain: [2^diamonds] paths,
          so 30 sits at the [Numbering.Too_many_paths] boundary and the
          maze method degrades to unprofilable (a warning, never an
          error), 0-30 *)
  phases : int;  (** traffic phases the program has arms for, 1-4 *)
  tenants : int;  (** tenant mix size (per-tenant dispatch skew), 1-8 *)
  burst : int;  (** requests per burst (one tenant per burst), 1-32 *)
  size : int;  (** default workload size (bursts per iteration) *)
}

val default : spec

(** Structured generation-time rejection: which axis, the offending
    value, and why. *)
type error = { axis : string; value : string; reason : string }

val error_to_string : error -> string

(** Every axis within its documented range. *)
val validate : spec -> (unit, error) result

(** Canonical spec string, e.g.
    ["gen:seed=7,methods=3,bias=85,mega=4,depth=3,loops=2,diamonds=8,phases=2,tenants=2,burst=4,size=60"].
    Every field is printed, in this fixed order. *)
val print : spec -> string

(** Parse a spec string.  Omitted axes take their {!default}; unknown
    or duplicate keys, malformed integers and out-of-range axes are
    rejected with a structured {!error}.  [parse (print s) = Ok s] for
    every valid spec. *)
val parse : string -> (spec, error) result

(** Whether a workload name is in the generator's namespace (starts
    with ["gen:"]). *)
val is_spec : string -> bool

(** The workload for a valid spec; its [name] is [print spec] and its
    [default_size] is [spec.size].
    @raise Invalid_argument if the spec does not validate. *)
val workload : spec -> Workload.t

(** [parse] + [validate] + [workload]. *)
val resolve : string -> (Workload.t, error) result

(** The canonical traffic schedule: the phase in effect at each of
    [windows] collection windows — phases are spread evenly, so a
    2-phase spec over 4 windows shifts at window 2 (matching the fleet
    default drift cohort).  Always [phases - 1] by the last window. *)
val schedule : spec -> windows:int -> int list

(** The windows at which [schedule] changes phase (the shift
    boundaries an accuracy-over-time series must recover after). *)
val shifts : spec -> windows:int -> int list

(** A deterministic corpus of [n] valid specs spanning the axis space,
    for sweeps and differential tests. *)
val corpus : ?n:int -> seed:int -> unit -> spec list
