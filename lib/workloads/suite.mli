(** The full benchmark suite of the paper's evaluation: SPEC JVM98,
    pseudojbb, and the DaCapo benchmarks that run on Jikes RVM (hsqldb
    omitted, as in the paper). *)

val all : Workload.t list

(** @raise Not_found for unknown names. *)
val find : string -> Workload.t

val names : string list
