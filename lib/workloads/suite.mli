(** The full benchmark suite of the paper's evaluation: SPEC JVM98,
    pseudojbb, and the DaCapo benchmarks that run on Jikes RVM (hsqldb
    omitted, as in the paper). *)

val all : Workload.t list

(** @raise Not_found for unknown names. *)
val find : string -> Workload.t

val names : string list

(** The full workload namespace: suite names, {!Phased} workloads, and
    ["gen:…"] spec strings resolved through {!Wgen}.  [Error] carries a
    human-readable message (unknown name, or a structured gen-spec
    rejection rendered as text). *)
val resolve : string -> (Workload.t, string) result
